package apps

import (
	"heteropart/internal/classify"
	"heteropart/internal/device"
	"heteropart/internal/mem"
	"heteropart/internal/task"
)

// HotSpot is the paper's second SK-Loop application: the Rodinia
// thermal-modeling 5-point stencil over a grid of cells, iterated in
// time with double-buffered temperature grids and a global
// synchronization point per iteration. Row-wise partitioning gives
// each chunk a one-row halo on either side, which is exactly what
// forces the per-iteration exchange (and, on the GPU side, the grid
// transfers that make Only-GPU lose to Only-CPU in Fig 7b).
type HotSpot struct{}

// NewHotSpot returns the application.
func NewHotSpot() HotSpot { return HotSpot{} }

// Name implements App.
func (HotSpot) Name() string { return "HotSpot" }

// DefaultN implements App: an 8192×8192 grid (0.75 GB across the three
// float32 arrays), iteration space = rows.
func (HotSpot) DefaultN() int64 { return 8192 }

// DefaultIters implements App.
func (HotSpot) DefaultIters() int { return 4 }

const (
	hotspotFlopsPerCell = 10
	hotspotAlpha        = 0.1
	hotspotBeta         = 0.05
)

// Build implements App.
func (h HotSpot) Build(v Variant) (*Problem, error) {
	v = v.withDefaults(h.DefaultN(), h.DefaultIters())
	rows := v.N
	cols := rows
	iters := v.Iters

	dir := mem.NewDirectory(v.Spaces)
	tempBuf := [2]*mem.Buffer{
		dir.Register("temp0", rows*cols, 4),
		dir.Register("temp1", rows*cols, 4),
	}
	powerBuf := dir.Register("power", rows*cols, 4)

	// Real state (compute mode) — allocated before the per-iteration
	// kernels close over it.
	var temp [2][]float32
	var power []float32
	if v.Compute {
		temp[0] = make([]float32, rows*cols)
		temp[1] = make([]float32, rows*cols)
		power = make([]float32, rows*cols)
		for i := range temp[0] {
			temp[0][i] = 300 + float32(i%17)
			power[i] = float32(i%7) / 7
		}
	}

	step := func(in, out []float32, lo, hi int64) {
		at := func(r, c int64) float32 {
			if r < 0 {
				r = 0
			}
			if r >= rows {
				r = rows - 1
			}
			return in[r*cols+c]
		}
		for r := lo; r < hi; r++ {
			for c := int64(0); c < cols; c++ {
				t := in[r*cols+c]
				left, right := t, t
				if c > 0 {
					left = in[r*cols+c-1]
				}
				if c < cols-1 {
					right = in[r*cols+c+1]
				}
				up, down := at(r-1, c), at(r+1, c)
				out[r*cols+c] = t + hotspotAlpha*(up+down+left+right-4*t) + hotspotBeta*power[r*cols+c]
			}
		}
	}

	makeKernel := func(iter int) *task.Kernel {
		inB, outB := tempBuf[iter%2], tempBuf[(iter+1)%2]
		k := &task.Kernel{
			Name:      "hotspot_kernel",
			Size:      rows,
			Precision: device.SP,
			Eff:       hotspotEff,
			Flops: func(lo, hi int64) float64 {
				return hotspotFlopsPerCell * float64(cols) * float64(hi-lo)
			},
			MemBytes: func(lo, hi int64) float64 {
				// 5 temperature reads + power read + write, 4 B each.
				return 28 * float64(cols) * float64(hi-lo)
			},
			Accesses: func(lo, hi int64) []task.Access {
				rlo, rhi := lo-1, hi+1
				if rlo < 0 {
					rlo = 0
				}
				if rhi > rows {
					rhi = rows
				}
				return []task.Access{
					rw(inB, rlo*cols, rhi*cols, task.Read), // halo rows
					rw(powerBuf, lo*cols, hi*cols, task.Read),
					rw(outB, lo*cols, hi*cols, task.Write),
				}
			},
		}
		if v.Compute {
			in, out := temp[iter%2], temp[(iter+1)%2]
			k.Compute = func(lo, hi int64) { step(in, out, lo, hi) }
		}
		return k
	}

	p := &Problem{
		AppName: h.Name(),
		N:       rows,
		Iters:   iters,
		Dir:     dir,
		Structure: classify.Structure{
			Flow:            classify.Loop{Body: classify.Call{Kernel: "hotspot_kernel"}, Trips: iters},
			InterKernelSync: true,
		},
	}
	for it := 0; it < iters; it++ {
		p.Phases = append(p.Phases, Phase{Kernel: makeKernel(it), SyncAfter: true})
	}
	p.Unique = collectUnique(p.Phases)

	if v.Compute {
		ref := [2][]float32{append([]float32(nil), temp[0]...), make([]float32, rows*cols)}
		for it := 0; it < iters; it++ {
			refStep(ref[it%2], ref[(it+1)%2], power, rows, cols)
		}
		want := ref[iters%2]
		p.Verify = func() error { return checkClose("temp", temp[iters%2], want, 1e-4) }
	}
	return p, nil
}

// refStep is the sequential reference update (identical arithmetic to
// the kernel's step, kept separate so the closure wiring of the live
// buffers cannot mask an aliasing bug).
func refStep(in, out, power []float32, rows, cols int64) {
	at := func(r, c int64) float32 {
		if r < 0 {
			r = 0
		}
		if r >= rows {
			r = rows - 1
		}
		return in[r*cols+c]
	}
	for r := int64(0); r < rows; r++ {
		for c := int64(0); c < cols; c++ {
			t := in[r*cols+c]
			left, right := t, t
			if c > 0 {
				left = in[r*cols+c-1]
			}
			if c < cols-1 {
				right = in[r*cols+c+1]
			}
			up, down := at(r-1, c), at(r+1, c)
			out[r*cols+c] = t + hotspotAlpha*(up+down+left+right-4*t) + hotspotBeta*power[r*cols+c]
		}
	}
}
