package apps

import (
	"fmt"

	"heteropart/internal/classify"
	"heteropart/internal/device"
	"heteropart/internal/mem"
	"heteropart/internal/task"
)

// Triangular is the imbalanced-workload specimen from Glinda's ICS'14
// companion paper (reference [9]): row reductions over a packed
// lower-triangular matrix, so row i costs i+1 elements — the heaviest
// row is n times the lightest. A uniform partitioning model misplaces
// the split badly here; the weighted pipeline
// (glinda.AnalyzeImbalanced) balances weight, not elements, and the
// CPU-side chunks are cut weight-equal so all m threads stay busy.
type Triangular struct{}

// NewTriangular returns the application.
func NewTriangular() Triangular { return Triangular{} }

// Name implements App.
func (Triangular) Name() string { return "Triangular" }

// DefaultN implements App: 32768 rows (a 2.1 GB packed triangle).
func (Triangular) DefaultN() int64 { return 32768 }

// DefaultIters implements App.
func (Triangular) DefaultIters() int { return 1 }

const triFlopsPerElem = 8

// triOff returns the packed offset of row r (elements before it).
func triOff(r int64) int64 { return r * (r + 1) / 2 }

// Build implements App.
func (tr Triangular) Build(v Variant) (*Problem, error) {
	v = v.withDefaults(tr.DefaultN(), 1)
	n := v.N
	packed := triOff(n)

	dir := mem.NewDirectory(v.Spaces)
	data := dir.Register("tri", packed, 4)
	out := dir.Register("out", n, 4)

	kernel := &task.Kernel{
		Name:      "tri_reduce",
		Size:      n,
		Precision: device.SP,
		Eff:       nbodyEff, // compute-heavy profile: GPU ~4x the CPU
		Flops: func(lo, hi int64) float64 {
			return triFlopsPerElem * float64(triOff(hi)-triOff(lo))
		},
		MemBytes: func(lo, hi int64) float64 {
			return 4 * float64(triOff(hi)-triOff(lo))
		},
		Accesses: func(lo, hi int64) []task.Access {
			return []task.Access{
				rw(data, triOff(lo), triOff(hi), task.Read),
				rw(out, lo, hi, task.Write),
			}
		},
	}

	p := &Problem{
		AppName:   tr.Name(),
		N:         n,
		Iters:     1,
		Dir:       dir,
		Phases:    []Phase{{Kernel: kernel, SyncAfter: true}},
		Structure: classify.Structure{Flow: classify.Call{Kernel: kernel.Name}},
	}
	p.Unique = collectUnique(p.Phases)

	if v.Compute {
		if n > 2048 {
			return nil, fmt.Errorf("apps: Triangular compute mode needs n <= 2048, got %d", n)
		}
		src := make([]float32, packed)
		res := make([]float32, n)
		for i := range src {
			src[i] = float32((i*17)%101) / 101
		}
		kernel.Compute = func(lo, hi int64) {
			for r := lo; r < hi; r++ {
				var acc float32
				row := src[triOff(r):triOff(r+1)]
				for j, v := range row {
					// A cheap position-dependent reduction (8-ish ops).
					acc += v * float32(j%7+1)
				}
				res[r] = acc
			}
		}
		want := make([]float32, n)
		for r := int64(0); r < n; r++ {
			var acc float32
			row := src[triOff(r):triOff(r+1)]
			for j, v := range row {
				acc += v * float32(j%7+1)
			}
			want[r] = acc
		}
		p.Verify = func() error { return checkClose("out", res, want, 1e-4) }
	}
	return p, nil
}
