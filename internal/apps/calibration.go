package apps

import "heteropart/internal/device"

// Calibration.
//
// The simulator needs, per kernel and device kind, an efficiency factor
// (achieved fraction of datasheet peak). These are free parameters of
// the reproduction; we set them so the *relative* behaviour the paper
// reports on its Xeon E5-2620 + Tesla K20m platform emerges:
//
//   - MatrixMul: Only-GPU ≈ 8-9× Only-CPU (Fig 5a), SP-Single ≈ 90%/10%
//     GPU/CPU split (Fig 6), transfers a small fraction of GPU time.
//     Paper-consistent absolute rates: CPU ≈ 22 GFLOPS (naive
//     per-thread code), GPU ≈ 190 GFLOPS (naive OpenCL kernel).
//   - BlackScholes: GPU transfer ≈ 37.5× GPU kernel time (Section
//     IV-B1), SP-Single split ≈ 41%/59% CPU/GPU (Fig 6).
//   - Nbody: GPU ≈ 4× whole CPU on the force kernel, so SP-Single
//     leans heavily GPU (Fig 8) but the per-iteration sync keeps
//     transfers in play.
//   - HotSpot: bandwidth-bound stencil; the GPU's raw rate is ~7× the
//     CPU's but per-iteration grid transfers make Only-GPU *slower*
//     than Only-CPU (Fig 7b), so SP-Single leans CPU.
//   - STREAM: bandwidth-bound; with the PCIe 2.0 link the GPU side is
//     ≈ 90% transfer (Section IV-B3) and the unified split lands near
//     44%/56% GPU/CPU (Fig 10). The CPU's task-based STREAM rate is
//     ≈ 14 GB/s (0.33 of peak — per-thread scalar code, NUMA traffic),
//     the GPU's ≈ 145 GB/s (0.7 of peak).
//
// Efficiencies are dimensionless, so the same calibration scales to
// other platform models in the catalog.
var (
	matmulEff = map[device.Kind]device.Efficiency{
		device.CPU:   {Compute: 0.058, Memory: 0.50},
		device.GPU:   {Compute: 0.055, Memory: 0.70},
		device.Accel: {Compute: 0.050, Memory: 0.60},
	}
	blackScholesEff = map[device.Kind]device.Efficiency{
		device.CPU:   {Compute: 0.079, Memory: 0.50},
		device.GPU:   {Compute: 0.480, Memory: 0.70},
		device.Accel: {Compute: 0.300, Memory: 0.60},
	}
	nbodyEff = map[device.Kind]device.Efficiency{
		device.CPU:   {Compute: 0.055, Memory: 0.50},
		device.GPU:   {Compute: 0.024, Memory: 0.70},
		device.Accel: {Compute: 0.020, Memory: 0.60},
	}
	hotspotEff = map[device.Kind]device.Efficiency{
		device.CPU:   {Compute: 0.20, Memory: 0.50},
		device.GPU:   {Compute: 0.20, Memory: 0.70},
		device.Accel: {Compute: 0.20, Memory: 0.60},
	}
	streamEff = map[device.Kind]device.Efficiency{
		device.CPU:   {Compute: 0.20, Memory: 0.33},
		device.GPU:   {Compute: 0.20, Memory: 0.70},
		device.Accel: {Compute: 0.20, Memory: 0.60},
	}
	choleskyEff = map[device.Kind]device.Efficiency{
		device.CPU:   {Compute: 0.30, Memory: 0.50},
		device.GPU:   {Compute: 0.25, Memory: 0.70},
		device.Accel: {Compute: 0.20, Memory: 0.60},
	}
)
