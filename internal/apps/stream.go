package apps

import (
	"heteropart/internal/classify"
	"heteropart/internal/device"
	"heteropart/internal/mem"
	"heteropart/internal/task"
)

// STREAM (McCalpin's memory-bandwidth benchmark) supplies the paper's
// multi-kernel applications: four kernels — copy (c=a), scale (b=k·c),
// add (c=a+b), triad (a=b+k·c) — over three float32 arrays.
//
//	STREAM-Seq  (MK-Seq):  the four kernels once
//	STREAM-Loop (MK-Loop): the four kernels iterated
//
// Both are evaluated with and without inter-kernel synchronization
// (Section IV-B3/4); the Sync variant field selects it. The kernels
// are purely bandwidth-bound, and on the paper's platform the PCIe
// transfers dominate the GPU side (≈90% of its time), which drives the
// unified split toward the CPU (44%/56% GPU/CPU, Fig 10).
const streamScalar = 3.0

// streamKernelSpec describes one of the four kernels generically.
type streamKernelSpec struct {
	name  string
	flops float64 // per element
	bytes float64 // device traffic per element (reads+writes, 4 B each)
}

var streamSpecs = []streamKernelSpec{
	{"copy", 0, 8},
	{"scale", 1, 8},
	{"add", 1, 12},
	{"triad", 2, 12},
}

// streamApp implements both STREAM variants.
type streamApp struct {
	name  string
	loop  bool
	iters int
}

// NewStreamSeq returns STREAM-Seq (MK-Seq: one pass over the four
// kernels, the paper's iteration-limited configuration).
func NewStreamSeq() App { return &streamApp{name: "STREAM-Seq", loop: false, iters: 1} }

// NewStreamLoop returns STREAM-Loop (MK-Loop: the original iterated
// form).
func NewStreamLoop() App { return &streamApp{name: "STREAM-Loop", loop: true, iters: 10} }

// Name implements App.
func (s *streamApp) Name() string { return s.name }

// DefaultN implements App: 62,914,560 array elements (float32; ≈0.75 GB
// over the three arrays).
func (s *streamApp) DefaultN() int64 { return 62_914_560 }

// DefaultIters implements App.
func (s *streamApp) DefaultIters() int { return s.iters }

// Build implements App.
func (s *streamApp) Build(v Variant) (*Problem, error) {
	v = v.withDefaults(s.DefaultN(), s.DefaultIters())
	if !s.loop {
		v.Iters = 1
	}
	n := v.N
	iters := v.Iters
	sync := v.Sync == SyncForced // default is the original no-sync form

	dir := mem.NewDirectory(v.Spaces)
	bufA := dir.Register("a", n, 4)
	bufB := dir.Register("b", n, 4)
	bufC := dir.Register("c", n, 4)

	var a, b, c []float32

	// Per-kernel read/write buffers and compute bodies.
	type binding struct {
		spec    streamKernelSpec
		reads   []*mem.Buffer
		writes  []*mem.Buffer
		compute func(lo, hi int64)
	}
	bindings := []binding{
		{spec: streamSpecs[0], reads: []*mem.Buffer{bufA}, writes: []*mem.Buffer{bufC},
			compute: func(lo, hi int64) {
				copy(c[lo:hi], a[lo:hi])
			}},
		{spec: streamSpecs[1], reads: []*mem.Buffer{bufC}, writes: []*mem.Buffer{bufB},
			compute: func(lo, hi int64) {
				for i := lo; i < hi; i++ {
					b[i] = streamScalar * c[i]
				}
			}},
		{spec: streamSpecs[2], reads: []*mem.Buffer{bufA, bufB}, writes: []*mem.Buffer{bufC},
			compute: func(lo, hi int64) {
				for i := lo; i < hi; i++ {
					c[i] = a[i] + b[i]
				}
			}},
		{spec: streamSpecs[3], reads: []*mem.Buffer{bufB, bufC}, writes: []*mem.Buffer{bufA},
			compute: func(lo, hi int64) {
				for i := lo; i < hi; i++ {
					a[i] = b[i] + streamScalar*c[i]
				}
			}},
	}

	kernels := make([]*task.Kernel, len(bindings))
	for i, bind := range bindings {
		bind := bind
		k := &task.Kernel{
			Name:      bind.spec.name,
			Size:      n,
			Precision: device.SP,
			Eff:       streamEff,
			Flops:     func(lo, hi int64) float64 { return bind.spec.flops * float64(hi-lo) },
			MemBytes:  func(lo, hi int64) float64 { return bind.spec.bytes * float64(hi-lo) },
			Accesses: func(lo, hi int64) []task.Access {
				var out []task.Access
				for _, r := range bind.reads {
					out = append(out, rw(r, lo, hi, task.Read))
				}
				for _, w := range bind.writes {
					out = append(out, rw(w, lo, hi, task.Write))
				}
				return out
			},
		}
		if v.Compute {
			k.Compute = bind.compute
		}
		kernels[i] = k
	}

	// Kernel structure IR.
	seq := make(classify.Seq, len(kernels))
	for i, k := range kernels {
		seq[i] = classify.Call{Kernel: k.Name}
	}
	var flow classify.Node = seq
	if s.loop {
		flow = classify.Loop{Body: seq, Trips: iters}
	}

	p := &Problem{
		AppName:   s.name,
		N:         n,
		Iters:     iters,
		Dir:       dir,
		Structure: classify.Structure{Flow: flow, InterKernelSync: sync},
	}
	for it := 0; it < iters; it++ {
		for _, k := range kernels {
			p.Phases = append(p.Phases, Phase{Kernel: k, SyncAfter: sync})
		}
	}
	p.Unique = collectUnique(p.Phases)

	if v.Compute {
		a = make([]float32, n)
		b = make([]float32, n)
		c = make([]float32, n)
		for i := range a {
			a[i] = 1 + float32(i%10)
			b[i] = 2
			c[i] = 0
		}
		// Sequential reference.
		ra := append([]float32(nil), a...)
		rb := append([]float32(nil), b...)
		rc := append([]float32(nil), c...)
		for it := 0; it < iters; it++ {
			copy(rc, ra)
			for i := range rb {
				rb[i] = streamScalar * rc[i]
			}
			for i := range rc {
				rc[i] = ra[i] + rb[i]
			}
			for i := range ra {
				ra[i] = rb[i] + streamScalar*rc[i]
			}
		}
		p.Verify = func() error {
			if err := checkClose("a", a, ra, 1e-5); err != nil {
				return err
			}
			if err := checkClose("b", b, rb, 1e-5); err != nil {
				return err
			}
			return checkClose("c", c, rc, 1e-5)
		}
	}
	return p, nil
}
