package apps

import (
	"heteropart/internal/classify"
	"heteropart/internal/device"
	"heteropart/internal/mem"
	"heteropart/internal/task"
)

// Convolution is a separable 2D convolution (the NVIDIA SDK's
// ConvolutionSeparable): a horizontal pass followed by a vertical
// pass over a row-partitioned image. Unlike STREAM, whose "with sync"
// variant is synthetic, this application *naturally* requires
// inter-kernel synchronization: the vertical pass reads a halo of
// kernelRadius rows around its chunk, which crosses the horizontal
// pass's partition boundaries — the second SP-Varied condition of
// Section III-C ("applications need synchronization to assemble the
// output data of one kernel produced on different processors for the
// correct input of the next kernel").
type Convolution struct{}

// NewConvolution returns the application.
func NewConvolution() Convolution { return Convolution{} }

// Name implements App.
func (Convolution) Name() string { return "Convolution" }

// DefaultN implements App: a 8192×8192 float32 image (rows iteration
// space).
func (Convolution) DefaultN() int64 { return 8192 }

// DefaultIters implements App.
func (Convolution) DefaultIters() int { return 1 }

const convRadius = 4

// convWeights is the normalized 1D filter both passes share.
var convWeights = func() [2*convRadius + 1]float32 {
	var w [2*convRadius + 1]float32
	var sum float32
	for i := range w {
		d := i - convRadius
		w[i] = float32(convRadius + 1 - abs(d))
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}()

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Build implements App.
func (cv Convolution) Build(v Variant) (*Problem, error) {
	v = v.withDefaults(cv.DefaultN(), 1)
	rows := v.N
	cols := rows

	dir := mem.NewDirectory(v.Spaces)
	src := dir.Register("src", rows*cols, 4)
	tmp := dir.Register("tmp", rows*cols, 4)
	dst := dir.Register("dst", rows*cols, 4)

	var in, mid, out []float32
	if v.Compute {
		in = make([]float32, rows*cols)
		mid = make([]float32, rows*cols)
		out = make([]float32, rows*cols)
		for i := range in {
			in[i] = float32((i*31)%251) / 251
		}
	}

	clampCol := func(c int64) int64 {
		if c < 0 {
			return 0
		}
		if c >= cols {
			return cols - 1
		}
		return c
	}
	clampRow := func(r int64) int64 {
		if r < 0 {
			return 0
		}
		if r >= rows {
			return rows - 1
		}
		return r
	}

	horizontal := &task.Kernel{
		Name:      "conv_rows",
		Size:      rows,
		Precision: device.SP,
		Eff:       hotspotEff, // bandwidth-leaning stencil profile
		Flops: func(lo, hi int64) float64 {
			return float64(2*(2*convRadius+1)) * float64(cols) * float64(hi-lo)
		},
		MemBytes: func(lo, hi int64) float64 { return 8 * float64(cols) * float64(hi-lo) },
		Accesses: func(lo, hi int64) []task.Access {
			// Row-local: reads and writes exactly its rows.
			return []task.Access{
				rw(src, lo*cols, hi*cols, task.Read),
				rw(tmp, lo*cols, hi*cols, task.Write),
			}
		},
	}
	vertical := &task.Kernel{
		Name:      "conv_cols",
		Size:      rows,
		Precision: device.SP,
		Eff:       hotspotEff,
		Flops: func(lo, hi int64) float64 {
			return float64(2*(2*convRadius+1)) * float64(cols) * float64(hi-lo)
		},
		MemBytes: func(lo, hi int64) float64 {
			return float64(4*(2*convRadius+2)) * float64(cols) * float64(hi-lo)
		},
		Accesses: func(lo, hi int64) []task.Access {
			// Reads a convRadius-row halo of tmp: the cross-partition
			// dependence that forces the inter-kernel sync.
			rlo, rhi := clampRow(lo-convRadius), clampRow(hi+convRadius-1)+1
			return []task.Access{
				rw(tmp, rlo*cols, rhi*cols, task.Read),
				rw(dst, lo*cols, hi*cols, task.Write),
			}
		},
	}

	if v.Compute {
		horizontal.Compute = func(lo, hi int64) {
			for r := lo; r < hi; r++ {
				for c := int64(0); c < cols; c++ {
					var acc float32
					for k := -convRadius; k <= convRadius; k++ {
						acc += convWeights[k+convRadius] * in[r*cols+clampCol(c+int64(k))]
					}
					mid[r*cols+c] = acc
				}
			}
		}
		vertical.Compute = func(lo, hi int64) {
			for r := lo; r < hi; r++ {
				for c := int64(0); c < cols; c++ {
					var acc float32
					for k := -convRadius; k <= convRadius; k++ {
						acc += convWeights[k+convRadius] * mid[clampRow(r+int64(k))*cols+c]
					}
					out[r*cols+c] = acc
				}
			}
		}
	}

	p := &Problem{
		AppName: cv.Name(),
		N:       rows,
		Iters:   1,
		Dir:     dir,
		Phases: []Phase{
			{Kernel: horizontal, SyncAfter: true}, // the natural sync point
			{Kernel: vertical, SyncAfter: true},
		},
		Structure: classify.Structure{
			Flow: classify.Seq{
				classify.Call{Kernel: "conv_rows"},
				classify.Call{Kernel: "conv_cols"},
			},
			InterKernelSync: true,
		},
	}
	p.Unique = collectUnique(p.Phases)

	if v.Compute {
		// Sequential reference.
		refMid := make([]float32, rows*cols)
		refOut := make([]float32, rows*cols)
		for r := int64(0); r < rows; r++ {
			for c := int64(0); c < cols; c++ {
				var acc float32
				for k := -convRadius; k <= convRadius; k++ {
					acc += convWeights[k+convRadius] * in[r*cols+clampCol(c+int64(k))]
				}
				refMid[r*cols+c] = acc
			}
		}
		for r := int64(0); r < rows; r++ {
			for c := int64(0); c < cols; c++ {
				var acc float32
				for k := -convRadius; k <= convRadius; k++ {
					acc += convWeights[k+convRadius] * refMid[clampRow(r+int64(k))*cols+c]
				}
				refOut[r*cols+c] = acc
			}
		}
		p.Verify = func() error { return checkClose("dst", out, refOut, 1e-5) }
	}
	return p, nil
}
