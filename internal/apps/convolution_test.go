package apps

import (
	"testing"

	"heteropart/internal/classify"
)

func TestConvolutionCorrect(t *testing.T) {
	p, err := NewConvolution().Build(smallVariant(48, 1))
	if err != nil {
		t.Fatal(err)
	}
	runSequential(t, p)
	p2, _ := NewConvolution().Build(smallVariant(48, 1))
	runSplit(t, p2)
}

func TestConvolutionClassAndSync(t *testing.T) {
	p, err := NewConvolution().Build(Variant{N: 128})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Class(); got != classify.MKSeq {
		t.Fatalf("class = %v, want MK-Seq", got)
	}
	if !p.NeedsSync() {
		t.Fatal("convolution must declare inter-kernel sync")
	}
	// The vertical pass's halo must be *derivable* too: the access-
	// pattern analysis independently detects the sync requirement.
	if !classify.DetectSync(p.Unique, 128) {
		t.Fatal("vertical halo not detected as sync-requiring")
	}
}

func TestConvolutionWeightsNormalized(t *testing.T) {
	var sum float32
	for _, w := range convWeights {
		if w <= 0 {
			t.Fatal("non-positive filter weight")
		}
		sum += w
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestConvolutionHaloAccess(t *testing.T) {
	p, _ := NewConvolution().Build(Variant{N: 64})
	vertical := p.KernelByName("conv_cols")
	if vertical == nil {
		t.Fatal("conv_cols missing")
	}
	acc := vertical.AccessesOf(10, 20)
	found := false
	for _, a := range acc {
		if a.Mode.Reads() && a.Interval.Lo == (10-convRadius)*64 && a.Interval.Hi == (20+convRadius)*64 {
			found = true
		}
	}
	if !found {
		t.Fatalf("halo read missing: %v", acc)
	}
	// The horizontal pass is row-local: no halo.
	horizontal := p.KernelByName("conv_rows")
	for _, a := range horizontal.AccessesOf(10, 20) {
		if a.Interval.Lo < 10*64 || a.Interval.Hi > 20*64 {
			t.Fatalf("conv_rows access escapes its chunk: %v", a)
		}
	}
}
