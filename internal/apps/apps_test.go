package apps

import (
	"testing"

	"heteropart/internal/classify"
	"heteropart/internal/device"
	"heteropart/internal/rt"
	"heteropart/internal/sched"
	"heteropart/internal/task"
)

// smallVariant returns a compute-mode variant sized for tests.
func smallVariant(n int64, iters int) Variant {
	return Variant{N: n, Iters: iters, Compute: true}
}

// runSequential executes every phase of a problem as whole-kernel
// host-pinned instances with barriers — the trivially correct
// schedule — and verifies the result.
func runSequential(t *testing.T, p *Problem) *rt.Result {
	t.Helper()
	plat := device.PaperPlatform(4)
	var plan task.Plan
	for _, ph := range p.Phases {
		plan.Submit(ph.Kernel, 0, ph.Kernel.Size, 0, -1)
		if ph.SyncAfter {
			plan.Barrier()
		}
	}
	plan.Barrier()
	res, err := rt.Execute(rt.Config{Platform: plat, Scheduler: sched.NewStatic(), Compute: true}, &plan, p.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if p.Verify == nil {
		t.Fatal("compute-mode problem has no Verify")
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	return res
}

// runSplit executes every phase split between host and GPU (70/30) to
// confirm partitioned execution is still correct.
func runSplit(t *testing.T, p *Problem) {
	t.Helper()
	plat := device.PaperPlatform(2)
	var plan task.Plan
	for _, ph := range p.Phases {
		if p.AtomicPhases {
			plan.Submit(ph.Kernel, 0, ph.Kernel.Size, task.Unpinned, -1)
			continue
		}
		cut := ph.Kernel.Size * 7 / 10
		plan.Submit(ph.Kernel, 0, cut, 0, -1)
		plan.Submit(ph.Kernel, cut, ph.Kernel.Size, 1, -1)
		if ph.SyncAfter {
			plan.Barrier()
		}
	}
	plan.Barrier()
	var s sched.Scheduler = sched.NewStatic()
	if p.AtomicPhases {
		s = sched.NewDep()
	}
	if _, err := rt.Execute(rt.Config{Platform: plat, Scheduler: s, Compute: true}, &plan, p.Dir); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("partitioned execution wrong: %v", err)
	}
}

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) != 9 {
		t.Fatalf("registry has %d apps", len(reg))
	}
	for _, a := range reg {
		got, err := ByName(a.Name())
		if err != nil || got.Name() != a.Name() {
			t.Fatalf("lookup %q failed: %v", a.Name(), err)
		}
		if a.DefaultN() <= 0 || a.DefaultIters() <= 0 {
			t.Fatalf("%s has bad defaults", a.Name())
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestPaperClasses(t *testing.T) {
	want := map[string]classify.Class{
		"MatrixMul":    classify.SKOne,
		"BlackScholes": classify.SKOne,
		"Nbody":        classify.SKLoop,
		"HotSpot":      classify.SKLoop,
		"STREAM-Seq":   classify.MKSeq,
		"STREAM-Loop":  classify.MKLoop,
		"Cholesky":     classify.MKDAG,
	}
	for name, wantClass := range want {
		app, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := app.Build(Variant{N: 128, Iters: 2})
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Class(); got != wantClass {
			t.Errorf("%s classified %v, want %v", name, got, wantClass)
		}
	}
}

func TestMatrixMulCorrect(t *testing.T) {
	p, err := NewMatrixMul().Build(smallVariant(48, 1))
	if err != nil {
		t.Fatal(err)
	}
	runSequential(t, p)
	p2, _ := NewMatrixMul().Build(smallVariant(48, 1))
	runSplit(t, p2)
}

func TestMatrixMulCostShape(t *testing.T) {
	p, err := NewMatrixMul().Build(Variant{N: 6144})
	if err != nil {
		t.Fatal(err)
	}
	k := p.Phases[0].Kernel
	// Total flops = 2 * 6144^3.
	want := 2.0 * 6144 * 6144 * 6144
	if got := k.Flops(0, 6144); got != want {
		t.Fatalf("flops = %g, want %g", got, want)
	}
	// Transfer for a 10-row chunk includes the whole B matrix.
	var bytes int64
	for _, a := range k.AccessesOf(0, 10) {
		if a.Mode.Reads() {
			bytes += a.Buf.Bytes(a.Interval)
		}
	}
	if bytes < 6144*6144*4 {
		t.Fatalf("chunk read bytes = %d, want >= full B", bytes)
	}
	if p.Phases[0].SyncAfter != true || len(p.Phases) != 1 {
		t.Fatal("MatrixMul phase shape wrong")
	}
}

func TestMatrixMulComputeSizeGuard(t *testing.T) {
	if _, err := NewMatrixMul().Build(Variant{N: 4096, Compute: true}); err == nil {
		t.Fatal("huge compute-mode matmul accepted")
	}
}

func TestBlackScholesCorrect(t *testing.T) {
	p, err := NewBlackScholes().Build(smallVariant(5000, 1))
	if err != nil {
		t.Fatal(err)
	}
	runSequential(t, p)
	p2, _ := NewBlackScholes().Build(smallVariant(5000, 1))
	runSplit(t, p2)
}

func TestBlackScholesPriceSanity(t *testing.T) {
	call, put := bsPrice(100, 100, 1)
	// At-the-money call with r=2%, sigma=30%: ~12.8; put ~10.9.
	if call < 10 || call > 16 || put < 8 || put > 14 {
		t.Fatalf("bs(100,100,1) = %g/%g", call, put)
	}
	// Put-call parity: C - P = S - X e^{-rT}.
	lhs := call - put
	rhs := 100 - 100*expNeg(bsRiskFree)
	if d := lhs - rhs; d > 1e-9 || d < -1e-9 {
		t.Fatalf("put-call parity violated: %g vs %g", lhs, rhs)
	}
}

func expNeg(r float64) float64 {
	// e^{-r}, avoiding a math import in the test for one call.
	sum, term := 1.0, 1.0
	for i := 1; i < 30; i++ {
		term *= -r / float64(i)
		sum += term
	}
	return sum
}

func TestNbodyCorrect(t *testing.T) {
	p, err := NewNbody().Build(smallVariant(256, 3))
	if err != nil {
		t.Fatal(err)
	}
	runSequential(t, p)
	p2, _ := NewNbody().Build(smallVariant(256, 3))
	runSplit(t, p2)
}

func TestNbodyPhasesAlternateBuffers(t *testing.T) {
	p, err := NewNbody().Build(Variant{N: 1024, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Phases) != 3 {
		t.Fatalf("phases = %d", len(p.Phases))
	}
	// Iteration i writes the buffer iteration i+1 reads.
	w0 := p.Phases[0].Kernel.AccessesOf(0, 10)
	r1 := p.Phases[1].Kernel.AccessesOf(0, 10)
	var wrote, read *int
	for _, a := range w0 {
		if a.Mode == task.Write {
			id := a.Buf.ID
			wrote = &id
		}
	}
	for _, a := range r1 {
		if a.Mode == task.Read {
			id := a.Buf.ID
			read = &id
		}
	}
	if wrote == nil || read == nil || *wrote != *read {
		t.Fatal("double buffering broken between iterations")
	}
	// The global read forces per-iteration sync.
	kernels := []*task.Kernel{p.Phases[0].Kernel, p.Phases[1].Kernel}
	if !classify.DetectSync(kernels, 1024) {
		t.Fatal("nbody global read not detected as sync-requiring")
	}
}

func TestHotSpotCorrect(t *testing.T) {
	p, err := NewHotSpot().Build(smallVariant(32, 3))
	if err != nil {
		t.Fatal(err)
	}
	runSequential(t, p)
	p2, _ := NewHotSpot().Build(smallVariant(32, 3))
	runSplit(t, p2)
}

func TestHotSpotHaloAccess(t *testing.T) {
	p, err := NewHotSpot().Build(Variant{N: 64, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	k := p.Phases[0].Kernel
	acc := k.AccessesOf(10, 20)
	// The temperature read must include halo rows 9 and 20.
	found := false
	for _, a := range acc {
		if a.Mode == task.Read && a.Interval.Lo == 9*64 && a.Interval.Hi == 21*64 {
			found = true
		}
	}
	if !found {
		t.Fatalf("halo access missing: %v", acc)
	}
	kernels := []*task.Kernel{p.Phases[0].Kernel, p.Phases[1].Kernel}
	if !classify.DetectSync(kernels, 64) {
		t.Fatal("hotspot halo not detected as sync-requiring")
	}
}

func TestStreamCorrectBothVariants(t *testing.T) {
	for _, syncMode := range []SyncMode{SyncNone, SyncForced} {
		p, err := NewStreamSeq().Build(Variant{N: 4096, Compute: true, Sync: syncMode})
		if err != nil {
			t.Fatal(err)
		}
		runSequential(t, p)
		p2, _ := NewStreamSeq().Build(Variant{N: 4096, Compute: true, Sync: syncMode})
		runSplit(t, p2)
	}
}

func TestStreamLoopCorrect(t *testing.T) {
	p, err := NewStreamLoop().Build(Variant{N: 2048, Iters: 3, Compute: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Phases) != 12 {
		t.Fatalf("phases = %d, want 12 (4 kernels x 3 iters)", len(p.Phases))
	}
	runSequential(t, p)
	p2, _ := NewStreamLoop().Build(Variant{N: 2048, Iters: 3, Compute: true})
	runSplit(t, p2)
}

func TestStreamSyncVariants(t *testing.T) {
	noSync, _ := NewStreamSeq().Build(Variant{N: 1024, Sync: SyncNone})
	if noSync.NeedsSync() {
		t.Fatal("w/o variant reports sync")
	}
	withSync, _ := NewStreamSeq().Build(Variant{N: 1024, Sync: SyncForced})
	if !withSync.NeedsSync() {
		t.Fatal("w variant reports no sync")
	}
	// Alignment check: STREAM chunks never read outside themselves.
	if classify.DetectSync(noSync.Unique, 1024) {
		t.Fatal("aligned STREAM flagged as needing sync")
	}
}

func TestStreamSeqIsSinglePass(t *testing.T) {
	p, _ := NewStreamSeq().Build(Variant{N: 1024, Iters: 99})
	if len(p.Phases) != 4 {
		t.Fatalf("STREAM-Seq phases = %d, want 4 regardless of iters", len(p.Phases))
	}
}

func TestCholeskyCorrect(t *testing.T) {
	p, err := NewCholesky().Build(Variant{N: 64, Compute: true})
	if err != nil {
		t.Fatal(err)
	}
	if !p.AtomicPhases {
		t.Fatal("cholesky must be atomic-phase")
	}
	runSequential(t, p)
	p2, _ := NewCholesky().Build(Variant{N: 64, Compute: true})
	runSplit(t, p2)
}

func TestCholeskyDAGShape(t *testing.T) {
	p, err := NewCholesky().Build(Variant{N: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Class(); got != classify.MKDAG {
		t.Fatalf("class = %v", got)
	}
	// T=8 tiles: phases = sum_k (1 + (T-1-k) + (T-1-k) + gemms).
	if len(p.Phases) < 50 {
		t.Fatalf("phases = %d, want a rich DAG", len(p.Phases))
	}
	names := map[string]bool{}
	for _, k := range p.Unique {
		names[k.Name] = true
	}
	for _, want := range []string{"potrf", "trsm", "syrk", "gemm"} {
		if !names[want] {
			t.Fatalf("kernel %s missing", want)
		}
	}
}

func TestCholeskyRejectsBadSizes(t *testing.T) {
	if _, err := NewCholesky().Build(Variant{N: 1000, Compute: true}); err == nil {
		t.Fatal("non-tileable size accepted")
	}
	if _, err := NewCholesky().Build(Variant{N: 4096, Compute: true}); err == nil {
		t.Fatal("huge compute-mode cholesky accepted")
	}
}

func TestVariantDefaults(t *testing.T) {
	v := Variant{}.withDefaults(100, 5)
	if v.N != 100 || v.Iters != 5 || v.Spaces != 2 {
		t.Fatalf("defaults = %+v", v)
	}
	v2 := Variant{N: 7, Iters: 2, Spaces: 3}.withDefaults(100, 5)
	if v2.N != 7 || v2.Iters != 2 || v2.Spaces != 3 {
		t.Fatalf("overrides lost = %+v", v2)
	}
}

func TestProblemHelpers(t *testing.T) {
	p, _ := NewStreamSeq().Build(Variant{N: 1024})
	if p.KernelByName("triad") == nil || p.KernelByName("nosuch") != nil {
		t.Fatal("KernelByName wrong")
	}
	if len(p.Unique) != 4 {
		t.Fatalf("unique kernels = %d", len(p.Unique))
	}
}

func TestTimingModeHasNoVerify(t *testing.T) {
	p, _ := NewStreamSeq().Build(Variant{N: 1024})
	if p.Verify != nil {
		t.Fatal("timing-only problem has Verify")
	}
	if p.Phases[0].Kernel.Compute != nil {
		t.Fatal("timing-only problem has Compute")
	}
}
