package apps

import (
	"fmt"
	"math"

	"heteropart/internal/classify"
	"heteropart/internal/device"
	"heteropart/internal/mem"
	"heteropart/internal/task"
)

// Cholesky is the Class-V (MK-DAG) specimen: a blocked right-looking
// Cholesky factorization over a lower-triangular grid of tiles, the
// canonical OmpSs task-DAG workload. The paper excludes MK-DAG from
// its performance figures (only dynamic strategies apply, Section IV);
// this application exists so the analyzer and the dynamic schedulers
// are exercised on a real DAG, and it powers the dagflow example.
//
// Each kernel invocation (potrf/trsm/syrk/gemm on specific tiles) is
// one indivisible task instance; dependencies between them emerge from
// the tile accesses.
type Cholesky struct{}

// NewCholesky returns the application.
func NewCholesky() Cholesky { return Cholesky{} }

// Name implements App.
func (Cholesky) Name() string { return "Cholesky" }

// DefaultN implements App: the matrix dimension (tiles are
// choleskyTile × choleskyTile).
func (Cholesky) DefaultN() int64 { return 8192 }

// DefaultIters implements App.
func (Cholesky) DefaultIters() int { return 1 }

const choleskyTile = 512

// Build implements App. The tile size shrinks for small problems so
// compute-mode tests stay cheap.
func (ch Cholesky) Build(v Variant) (*Problem, error) {
	v = v.withDefaults(ch.DefaultN(), 1)
	n := v.N
	ts := int64(choleskyTile)
	if n < ts*2 {
		ts = n / 4
	}
	if ts < 1 || n%ts != 0 {
		return nil, fmt.Errorf("apps: Cholesky needs n divisible into tiles (n=%d, ts=%d)", n, ts)
	}
	T := n / ts // tiles per dimension

	dir := mem.NewDirectory(v.Spaces)
	tileBuf := make(map[[2]int64]*mem.Buffer)
	for i := int64(0); i < T; i++ {
		for j := int64(0); j <= i; j++ {
			tileBuf[[2]int64{i, j}] = dir.Register(fmt.Sprintf("t%d_%d", i, j), ts*ts, 8)
		}
	}

	var tiles map[[2]int64][]float64
	if v.Compute {
		if n > 512 {
			return nil, fmt.Errorf("apps: Cholesky compute mode needs n <= 512, got %d", n)
		}
		tiles = make(map[[2]int64][]float64)
		for key := range tileBuf {
			tiles[key] = make([]float64, ts*ts)
		}
		// SPD source matrix: strong diagonal + smooth off-diagonal.
		for i := int64(0); i < n; i++ {
			for j := int64(0); j <= i; j++ {
				val := 1.0 / (1.0 + float64(i-j))
				if i == j {
					val += float64(n)
				}
				tiles[[2]int64{i / ts, j / ts}][(i%ts)*ts+(j%ts)] = val
			}
		}
	}

	elems := ts * ts
	scale := func(total float64) func(lo, hi int64) float64 {
		return func(lo, hi int64) float64 { return total * float64(hi-lo) / float64(elems) }
	}
	tsf := float64(ts)

	type phaseSpec struct {
		name    string
		flops   float64
		reads   [][2]int64
		writes  [][2]int64
		compute func()
	}
	var specs []phaseSpec

	potrf := func(dst []float64) {
		for j := int64(0); j < ts; j++ {
			d := dst[j*ts+j]
			for k := int64(0); k < j; k++ {
				d -= dst[j*ts+k] * dst[j*ts+k]
			}
			d = math.Sqrt(d)
			dst[j*ts+j] = d
			for i := j + 1; i < ts; i++ {
				v := dst[i*ts+j]
				for k := int64(0); k < j; k++ {
					v -= dst[i*ts+k] * dst[j*ts+k]
				}
				dst[i*ts+j] = v / d
			}
			for k := j + 1; k < ts; k++ {
				dst[j*ts+k] = 0
			}
		}
	}
	trsm := func(l, x []float64) { // x = x · L^{-T}
		for i := int64(0); i < ts; i++ {
			for j := int64(0); j < ts; j++ {
				v := x[i*ts+j]
				for k := int64(0); k < j; k++ {
					v -= x[i*ts+k] * l[j*ts+k]
				}
				x[i*ts+j] = v / l[j*ts+j]
			}
		}
	}
	syrk := func(a, dst []float64) { // dst -= a·aᵀ (lower part used)
		for i := int64(0); i < ts; i++ {
			for j := int64(0); j <= i; j++ {
				var v float64
				for k := int64(0); k < ts; k++ {
					v += a[i*ts+k] * a[j*ts+k]
				}
				dst[i*ts+j] -= v
			}
		}
	}
	gemm := func(a, b, dst []float64) { // dst -= a·bᵀ
		for i := int64(0); i < ts; i++ {
			for j := int64(0); j < ts; j++ {
				var v float64
				for k := int64(0); k < ts; k++ {
					v += a[i*ts+k] * b[j*ts+k]
				}
				dst[i*ts+j] -= v
			}
		}
	}

	for k := int64(0); k < T; k++ {
		k := k
		specs = append(specs, phaseSpec{
			name: "potrf", flops: tsf * tsf * tsf / 3,
			writes:  [][2]int64{{k, k}},
			compute: func() { potrf(tiles[[2]int64{k, k}]) },
		})
		for i := k + 1; i < T; i++ {
			i := i
			specs = append(specs, phaseSpec{
				name: "trsm", flops: tsf * tsf * tsf,
				reads:   [][2]int64{{k, k}},
				writes:  [][2]int64{{i, k}},
				compute: func() { trsm(tiles[[2]int64{k, k}], tiles[[2]int64{i, k}]) },
			})
		}
		for i := k + 1; i < T; i++ {
			i := i
			specs = append(specs, phaseSpec{
				name: "syrk", flops: tsf * tsf * tsf,
				reads:   [][2]int64{{i, k}},
				writes:  [][2]int64{{i, i}},
				compute: func() { syrk(tiles[[2]int64{i, k}], tiles[[2]int64{i, i}]) },
			})
			for j := k + 1; j < i; j++ {
				j := j
				specs = append(specs, phaseSpec{
					name: "gemm", flops: 2 * tsf * tsf * tsf,
					reads:   [][2]int64{{i, k}, {j, k}},
					writes:  [][2]int64{{i, j}},
					compute: func() { gemm(tiles[[2]int64{i, k}], tiles[[2]int64{j, k}], tiles[[2]int64{i, j}]) },
				})
			}
		}
	}

	p := &Problem{
		AppName:      ch.Name(),
		N:            n,
		Iters:        1,
		Dir:          dir,
		AtomicPhases: true,
	}
	lastWriter := make(map[[2]int64]int)
	var dagCalls []classify.DAGCall
	for idx, sp := range specs {
		sp := sp
		k := &task.Kernel{
			Name:      sp.name,
			Size:      elems,
			Precision: device.DP,
			Eff:       choleskyEff,
			Flops:     scale(sp.flops),
			MemBytes:  scale(float64(len(sp.reads)+len(sp.writes)*2) * tsf * tsf * 8),
			Accesses: func(lo, hi int64) []task.Access {
				var out []task.Access
				for _, r := range sp.reads {
					out = append(out, rw(tileBuf[r], 0, elems, task.Read))
				}
				for _, w := range sp.writes {
					out = append(out, rw(tileBuf[w], 0, elems, task.ReadWrite))
				}
				return out
			},
		}
		if v.Compute {
			k.Compute = func(lo, hi int64) { sp.compute() }
		}
		p.Phases = append(p.Phases, Phase{Kernel: k})

		var after []int
		seen := make(map[int]bool)
		for _, t := range append(append([][2]int64{}, sp.reads...), sp.writes...) {
			if w, ok := lastWriter[t]; ok && !seen[w] {
				seen[w] = true
				after = append(after, w)
			}
		}
		dagCalls = append(dagCalls, classify.DAGCall{Kernel: sp.name, After: after})
		for _, w := range sp.writes {
			lastWriter[w] = idx
		}
	}
	p.Structure = classify.Structure{
		Flow:            classify.DAG{Calls: dagCalls},
		InterKernelSync: false,
	}
	p.Unique = collectUnique(p.Phases)

	if v.Compute {
		// Reference: dense sequential Cholesky of the same matrix.
		ref := make([]float64, n*n)
		for i := int64(0); i < n; i++ {
			for j := int64(0); j <= i; j++ {
				val := 1.0 / (1.0 + float64(i-j))
				if i == j {
					val += float64(n)
				}
				ref[i*n+j] = val
			}
		}
		for j := int64(0); j < n; j++ {
			d := ref[j*n+j]
			for k := int64(0); k < j; k++ {
				d -= ref[j*n+k] * ref[j*n+k]
			}
			d = math.Sqrt(d)
			ref[j*n+j] = d
			for i := j + 1; i < n; i++ {
				v := ref[i*n+j]
				for k := int64(0); k < j; k++ {
					v -= ref[i*n+k] * ref[j*n+k]
				}
				ref[i*n+j] = v / d
			}
		}
		p.Verify = func() error {
			for i := int64(0); i < n; i++ {
				for j := int64(0); j <= i; j++ {
					got := tiles[[2]int64{i / ts, j / ts}][(i%ts)*ts+(j%ts)]
					want := ref[i*n+j]
					if math.Abs(got-want) > 1e-8*math.Max(1, math.Abs(want)) {
						return fmt.Errorf("L[%d,%d] = %g, want %g", i, j, got, want)
					}
				}
			}
			return nil
		}
	}
	return p, nil
}
