package apps

import (
	"math"

	"heteropart/internal/classify"
	"heteropart/internal/device"
	"heteropart/internal/mem"
	"heteropart/internal/task"
)

// Nbody is the paper's first SK-Loop application: a body-interaction
// simulation iterated over time steps (Mont-Blanc benchmark suite,
// OmpSs implementation). Each iteration computes forces and
// integrates; a global synchronization point after each iteration
// combines the partial outputs at the host before the next step
// (Section IV-B2).
//
// Substitution note: the Mont-Blanc kernel at the paper's 1,048,576
// bodies cannot be all-pairs within the reported runtimes, so we model
// the force computation with a fixed interaction window (a cell-list /
// neighbor-window scheme) of nbodyWindow bodies. The code path — a
// compute-heavy kernel that reads *all* positions (forcing the
// per-iteration exchange) and writes its own chunk — is preserved.
type Nbody struct{}

// NewNbody returns the application.
func NewNbody() Nbody { return Nbody{} }

// Name implements App.
func (Nbody) Name() string { return "Nbody" }

// DefaultN implements App: 1,048,576 bodies (64 MB of state).
func (Nbody) DefaultN() int64 { return 1 << 20 }

// DefaultIters implements App.
func (Nbody) DefaultIters() int { return 4 }

const (
	// nbodyWindow is the interaction neighborhood per body.
	nbodyWindow = 925
	// nbodyFlopsPerPair is the classic interaction cost.
	nbodyFlopsPerPair = 20
	nbodyDT           = 0.001
	nbodySoftening    = 1e-4
)

// Build implements App.
func (nb Nbody) Build(v Variant) (*Problem, error) {
	v = v.withDefaults(nb.DefaultN(), nb.DefaultIters())
	n := v.N
	iters := v.Iters
	window := int64(nbodyWindow)
	if window > n {
		window = n
	}

	dir := mem.NewDirectory(v.Spaces)
	// Positions are double-buffered across iterations; 16 B per body
	// (x, y, z, mass), 12 B of velocity.
	posBuf := [2]*mem.Buffer{dir.Register("pos0", n, 16), dir.Register("pos1", n, 16)}
	velBuf := dir.Register("vel", n, 12)

	// Real state (compute mode) — allocated before the per-iteration
	// kernels close over it.
	var pos [2][]float32
	var vel []float32
	if v.Compute {
		pos[0] = make([]float32, 4*n)
		pos[1] = make([]float32, 4*n)
		vel = make([]float32, 3*n)
		for i := int64(0); i < n; i++ {
			pos[0][i*4] = float32((i*13)%97) / 97
			pos[0][i*4+1] = float32((i*31)%89) / 89
			pos[0][i*4+2] = float32((i*7)%83) / 83
			pos[0][i*4+3] = 1 + float32(i%5)/5
		}
	}

	step := func(in, out []float32, vel []float32, lo, hi int64) {
		for i := lo; i < hi; i++ {
			xi, yi, zi := in[i*4], in[i*4+1], in[i*4+2]
			var ax, ay, az float32
			half := window / 2
			for w := int64(0); w < window; w++ {
				j := i - half + w
				if j < 0 {
					j += n
				} else if j >= n {
					j -= n
				}
				if j == i {
					continue
				}
				dx := in[j*4] - xi
				dy := in[j*4+1] - yi
				dz := in[j*4+2] - zi
				distSq := dx*dx + dy*dy + dz*dz + nbodySoftening
				inv := 1 / float32(math.Sqrt(float64(distSq)))
				inv3 := inv * inv * inv * in[j*4+3] // * mass_j
				ax += dx * inv3
				ay += dy * inv3
				az += dz * inv3
			}
			vel[i*3] += ax * nbodyDT
			vel[i*3+1] += ay * nbodyDT
			vel[i*3+2] += az * nbodyDT
			out[i*4] = xi + vel[i*3]*nbodyDT
			out[i*4+1] = yi + vel[i*3+1]*nbodyDT
			out[i*4+2] = zi + vel[i*3+2]*nbodyDT
			out[i*4+3] = in[i*4+3]
		}
	}

	makeKernel := func(iter int) *task.Kernel {
		inB, outB := posBuf[iter%2], posBuf[(iter+1)%2]
		k := &task.Kernel{
			Name:      "nbody_force",
			Size:      n,
			Precision: device.SP,
			Eff:       nbodyEff,
			Flops: func(lo, hi int64) float64 {
				return nbodyFlopsPerPair * float64(window) * float64(hi-lo)
			},
			MemBytes: func(lo, hi int64) float64 {
				// Window reads of positions plus own state update.
				return float64(hi-lo) * (16*8 + 16 + 12)
			},
			Accesses: func(lo, hi int64) []task.Access {
				return []task.Access{
					rw(inB, 0, n, task.Read), // all positions
					rw(velBuf, lo, hi, task.ReadWrite),
					rw(outB, lo, hi, task.Write),
				}
			},
		}
		if v.Compute {
			in, out := pos[iter%2], pos[(iter+1)%2]
			k.Compute = func(lo, hi int64) { step(in, out, vel, lo, hi) }
		}
		return k
	}

	p := &Problem{
		AppName: nb.Name(),
		N:       n,
		Iters:   iters,
		Dir:     dir,
		Structure: classify.Structure{
			Flow:            classify.Loop{Body: classify.Call{Kernel: "nbody_force"}, Trips: iters},
			InterKernelSync: true,
		},
	}
	for it := 0; it < iters; it++ {
		p.Phases = append(p.Phases, Phase{Kernel: makeKernel(it), SyncAfter: true})
	}
	p.Unique = collectUnique(p.Phases)

	if v.Compute {
		// Sequential reference on copies.
		refPos := [2][]float32{append([]float32(nil), pos[0]...), make([]float32, 4*n)}
		refVel := make([]float32, 3*n)
		for it := 0; it < iters; it++ {
			step(refPos[it%2], refPos[(it+1)%2], refVel, 0, n)
		}
		wantPos := refPos[iters%2]
		p.Verify = func() error {
			if err := checkClose("pos", pos[iters%2], wantPos, 1e-4); err != nil {
				return err
			}
			return checkClose("vel", vel, refVel, 1e-4)
		}
	}
	return p, nil
}
