package apps

import (
	"strings"
	"testing"
)

// TestByNameCaseInsensitive checks application lookup ignores case.
func TestByNameCaseInsensitive(t *testing.T) {
	for _, name := range []string{"MatrixMul", "matrixmul", "BLACKSCHOLES", "stream-seq", "hotspot"} {
		a, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if !strings.EqualFold(a.Name(), name) {
			t.Errorf("ByName(%q) resolved to %s", name, a.Name())
		}
	}
}

// TestByNameSuggests checks near-miss names get a did-you-mean hint
// and hopeless names do not.
func TestByNameSuggests(t *testing.T) {
	_, err := ByName("MatrixMull")
	if err == nil || !strings.Contains(err.Error(), `did you mean "MatrixMul"?`) {
		t.Errorf("ByName(MatrixMull) = %v, want MatrixMul suggestion", err)
	}
	_, err = ByName("STREAM-Sqe")
	if err == nil || !strings.Contains(err.Error(), `did you mean "STREAM-Seq"?`) {
		t.Errorf("ByName(STREAM-Sqe) = %v, want STREAM-Seq suggestion", err)
	}
	_, err = ByName("linpack")
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Errorf("ByName(linpack) = %v, want plain unknown-application error", err)
	}
}
