package apps

import (
	"fmt"

	"heteropart/internal/classify"
	"heteropart/internal/device"
	"heteropart/internal/mem"
	"heteropart/internal/task"
)

// MatrixMul is the paper's first SK-One application: a dense
// single-precision matrix-matrix multiplication A×B=C from the NVIDIA
// OpenCL SDK. The iteration space is the rows of C (row-wise
// partitioning, Section IV-B1): every task instance receives a block
// of consecutive rows of A plus the full B — which is why the GPU
// partition's transfer bytes have a large constant term.
type MatrixMul struct{}

// NewMatrixMul returns the application.
func NewMatrixMul() MatrixMul { return MatrixMul{} }

// Name implements App.
func (MatrixMul) Name() string { return "MatrixMul" }

// DefaultN implements App: 6144×6144 (0.4 GB of float32 matrices).
func (MatrixMul) DefaultN() int64 { return 6144 }

// DefaultIters implements App.
func (MatrixMul) DefaultIters() int { return 1 }

// Build implements App.
func (m MatrixMul) Build(v Variant) (*Problem, error) {
	v = v.withDefaults(m.DefaultN(), 1)
	n := v.N
	dir := mem.NewDirectory(v.Spaces)
	bufA := dir.Register("A", n*n, 4)
	bufB := dir.Register("B", n*n, 4)
	bufC := dir.Register("C", n*n, 4)

	kernel := &task.Kernel{
		Name:      "matrix_mul",
		Size:      n,
		Precision: device.SP,
		Eff:       matmulEff,
		// 2·N² flops per row of C.
		Flops: func(lo, hi int64) float64 { return 2 * float64(n) * float64(n) * float64(hi-lo) },
		// Device-memory traffic per row: A row + C row + tiled B
		// reuse (cache behaviour is folded into the efficiency
		// factors; the kernel is compute-bound either way).
		MemBytes: func(lo, hi int64) float64 { return 12 * float64(n) * float64(hi-lo) },
		Accesses: func(lo, hi int64) []task.Access {
			return []task.Access{
				rw(bufA, lo*n, hi*n, task.Read),
				rw(bufB, 0, n*n, task.Read), // full B: the broadcast input
				rw(bufC, lo*n, hi*n, task.Write),
			}
		},
	}

	p := &Problem{
		AppName:   m.Name(),
		N:         n,
		Iters:     1,
		Dir:       dir,
		Phases:    []Phase{{Kernel: kernel, SyncAfter: true}},
		Structure: classify.Structure{Flow: classify.Call{Kernel: kernel.Name}},
	}
	p.Unique = collectUnique(p.Phases)

	if v.Compute {
		if n > 2048 {
			return nil, fmt.Errorf("apps: MatrixMul compute mode needs n <= 2048, got %d (O(n^3) host work)", n)
		}
		a := make([]float32, n*n)
		b := make([]float32, n*n)
		c := make([]float32, n*n)
		for i := range a {
			a[i] = float32((i*7+3)%11) / 11
			b[i] = float32((i*5+1)%13) / 13
		}
		want := make([]float32, n*n)
		for i := int64(0); i < n; i++ {
			for k := int64(0); k < n; k++ {
				aik := a[i*n+k]
				if aik == 0 {
					continue
				}
				row := b[k*n : (k+1)*n]
				out := want[i*n : (i+1)*n]
				for j := range out {
					out[j] += aik * row[j]
				}
			}
		}
		kernel.Compute = func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				out := c[i*n : (i+1)*n]
				for j := range out {
					out[j] = 0
				}
				for k := int64(0); k < n; k++ {
					aik := a[i*n+k]
					if aik == 0 {
						continue
					}
					row := b[k*n : (k+1)*n]
					for j := range out {
						out[j] += aik * row[j]
					}
				}
			}
		}
		p.Verify = func() error { return checkClose("C", c, want, 1e-4) }
	}
	return p, nil
}
