// Package apps implements the paper's six evaluation applications
// (Table II) plus a Class-V specimen:
//
//	MatrixMul     SK-One   dense matrix-matrix multiply (NVIDIA SDK)
//	BlackScholes  SK-One   European option pricing (NVIDIA SDK)
//	Nbody         SK-Loop  body interactions over time (Mont-Blanc)
//	HotSpot       SK-Loop  thermal grid simulation (Rodinia)
//	STREAM-Seq    MK-Seq   copy/scale/add/triad once (STREAM)
//	STREAM-Loop   MK-Loop  copy/scale/add/triad iterated (STREAM)
//	Cholesky      MK-DAG   blocked tile factorization (extension)
//	Convolution   MK-Seq   separable 2D convolution with a natural
//	                       inter-kernel sync requirement (extension)
//	Triangular    SK-One   imbalanced packed-triangular reduction
//	                       (Glinda ICS'14 extension)
//
// Every application provides real Go kernel implementations (compute
// mode, used by correctness tests), a calibrated cost model (timing
// mode, used by the paper-scale benchmarks), OmpSs-style access
// declarations, and its kernel structure for the classifier.
package apps

import (
	"fmt"
	"strings"

	"heteropart/internal/apierr"
	"heteropart/internal/classify"
	"heteropart/internal/mem"
	"heteropart/internal/names"
	"heteropart/internal/task"
)

// SyncMode selects the inter-kernel synchronization variant for
// applications evaluated both ways (STREAM-Seq/Loop, Section IV-B3).
type SyncMode int

const (
	// SyncDefault uses the application's natural behaviour.
	SyncDefault SyncMode = iota
	// SyncForced adds a taskwait after every kernel ("w" variants).
	SyncForced
	// SyncNone removes inter-kernel taskwaits ("w/o" variants).
	SyncNone
)

// Variant parameterizes one problem instantiation.
type Variant struct {
	// N is the problem size in iteration-space elements; 0 uses the
	// application default (the paper's evaluation size).
	N int64
	// Iters is the loop trip count for iterative classes; 0 uses the
	// default.
	Iters int
	// Sync selects the synchronization variant.
	Sync SyncMode
	// Spaces is the number of memory spaces (1 + accelerators);
	// 0 means 2 (the paper's CPU+GPU platform).
	Spaces int
	// Compute allocates real data and enables kernel execution.
	Compute bool
}

func (v Variant) withDefaults(defN int64, defIters int) Variant {
	if v.N <= 0 {
		v.N = defN
	}
	if v.Iters <= 0 {
		v.Iters = defIters
	}
	if v.Spaces <= 0 {
		v.Spaces = 2
	}
	return v
}

// Phase is one kernel invocation in the unrolled program order.
type Phase struct {
	Kernel *task.Kernel
	// SyncAfter marks an original taskwait following this kernel.
	SyncAfter bool
}

// Problem is an instantiated workload: buffers registered in a fresh
// directory, the unrolled phase list, and (in compute mode) a
// verification closure comparing against the sequential reference.
type Problem struct {
	AppName string
	N       int64
	Iters   int
	Dir     *mem.Directory
	Phases  []Phase
	// Unique holds one representative kernel per distinct kernel name
	// in first-appearance order (Glinda profiles these).
	Unique []*task.Kernel
	// Structure is the kernel structure for the classifier.
	Structure classify.Structure
	// AtomicPhases marks each phase as one indivisible task instance
	// (DAG applications whose kernels operate on whole tiles);
	// strategies must not chunk them.
	AtomicPhases bool
	// Verify checks computed results against the reference; nil in
	// timing-only mode.
	Verify func() error
}

// Class classifies the problem's structure. Registry-built problems
// always carry a valid structure; a hand-built problem with an invalid
// one classifies as the zero class (SK-One).
func (p *Problem) Class() classify.Class {
	c, _ := classify.Classify(p.Structure)
	return c
}

// NeedsSync reports whether this problem's phases include inter-kernel
// synchronization.
func (p *Problem) NeedsSync() bool {
	for i, ph := range p.Phases {
		if ph.SyncAfter && i < len(p.Phases)-1 {
			return true
		}
	}
	return false
}

// KernelByName returns the representative kernel with the given name.
func (p *Problem) KernelByName(name string) *task.Kernel {
	for _, k := range p.Unique {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// collectUnique builds the Unique list from phases.
func collectUnique(phases []Phase) []*task.Kernel {
	var out []*task.Kernel
	seen := make(map[string]bool)
	for _, ph := range phases {
		if !seen[ph.Kernel.Name] {
			seen[ph.Kernel.Name] = true
			out = append(out, ph.Kernel)
		}
	}
	return out
}

// App builds problems.
type App interface {
	// Name is the application name as the paper spells it.
	Name() string
	// DefaultN is the paper's evaluation problem size.
	DefaultN() int64
	// DefaultIters is the paper's loop trip count (1 for non-loop).
	DefaultIters() int
	// Build instantiates a problem.
	Build(v Variant) (*Problem, error)
}

// Registry returns all applications in Table II order (plus the
// Class-V extension).
func Registry() []App {
	return []App{
		NewMatrixMul(),
		NewBlackScholes(),
		NewNbody(),
		NewHotSpot(),
		NewStreamSeq(),
		NewStreamLoop(),
		NewCholesky(),
		NewConvolution(),
		NewTriangular(),
	}
}

// ByName finds a registered application. Matching is
// case-insensitive; an unknown name suggests the closest registered
// spelling when one is close.
func ByName(name string) (App, error) {
	reg := Registry()
	for _, a := range reg {
		if strings.EqualFold(a.Name(), name) {
			return a, nil
		}
	}
	known := make([]string, len(reg))
	for i, a := range reg {
		known[i] = a.Name()
	}
	if sug := names.Closest(name, known); sug != "" {
		return nil, fmt.Errorf("apps: %w %q (did you mean %q?)", apierr.ErrUnknownApp, name, sug)
	}
	return nil, fmt.Errorf("apps: %w %q", apierr.ErrUnknownApp, name)
}

// rw is shorthand for a one-to-one interval access.
func rw(b *mem.Buffer, lo, hi int64, m task.Mode) task.Access {
	return task.Access{Buf: b, Interval: mem.Interval{Lo: lo, Hi: hi}, Mode: m}
}

// checkClose verifies two float32 slices elementwise within a relative
// tolerance, reporting the first mismatch.
func checkClose(name string, got, want []float32, tol float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		g, w := float64(got[i]), float64(want[i])
		d := g - w
		if d < 0 {
			d = -d
		}
		scale := 1.0
		if w > 1 || w < -1 {
			if w < 0 {
				scale = -w
			} else {
				scale = w
			}
		}
		if d > tol*scale {
			return fmt.Errorf("%s[%d] = %g, want %g", name, i, g, w)
		}
	}
	return nil
}
