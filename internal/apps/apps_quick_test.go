package apps

import (
	"math/rand"
	"testing"

	"heteropart/internal/device"
)

// timingProblems builds every app in timing mode at a modest size.
func timingProblems(t *testing.T) []*Problem {
	t.Helper()
	var out []*Problem
	for _, a := range Registry() {
		n := int64(512)
		if a.Name() == "Cholesky" {
			n = 4096 // needs tile divisibility
		}
		p, err := a.Build(Variant{N: n, Iters: 2})
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		out = append(out, p)
	}
	return out
}

// TestQuickCostModelsAdditive: for every kernel, cost of [lo,hi) must
// equal cost of [lo,mid) + cost of [mid,hi) — chunking never changes
// the total work (launch overheads are modeled separately).
func TestQuickCostModelsAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, p := range timingProblems(t) {
		for _, k := range p.Unique {
			for trial := 0; trial < 50; trial++ {
				lo := rng.Int63n(k.Size)
				hi := lo + rng.Int63n(k.Size-lo)
				if hi <= lo+1 {
					continue
				}
				mid := lo + 1 + rng.Int63n(hi-lo-1)
				whole := k.Work(lo, hi)
				a := k.Work(lo, mid)
				b := k.Work(mid, hi)
				if !closeF(whole.Flops, a.Flops+b.Flops) {
					t.Fatalf("%s/%s: flops not additive: f(%d,%d)=%g != %g+%g",
						p.AppName, k.Name, lo, hi, whole.Flops, a.Flops, b.Flops)
				}
				if !closeF(whole.Bytes, a.Bytes+b.Bytes) {
					t.Fatalf("%s/%s: bytes not additive", p.AppName, k.Name)
				}
			}
		}
	}
}

func closeF(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d <= 1e-9*m+1e-9
}

// TestQuickAccessesCoverWrites: every kernel's write accesses for a
// chunk must stay inside buffers and the union of chunk writes over a
// full split must cover what the whole-kernel write covers.
func TestQuickAccessesWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, p := range timingProblems(t) {
		for _, k := range p.Unique {
			for trial := 0; trial < 30; trial++ {
				lo := rng.Int63n(k.Size)
				hi := lo + 1 + rng.Int63n(k.Size-lo)
				if hi > k.Size {
					hi = k.Size
				}
				for _, a := range k.AccessesOf(lo, hi) {
					if a.Interval.Lo < 0 || a.Interval.Hi > a.Buf.Elems {
						t.Fatalf("%s/%s: access %v escapes buffer %s[0,%d)",
							p.AppName, k.Name, a, a.Buf.Name, a.Buf.Elems)
					}
					if a.Interval.Empty() {
						t.Fatalf("%s/%s: empty access %v for nonempty chunk", p.AppName, k.Name, a)
					}
				}
			}
		}
	}
}

// TestQuickCostNonNegative: costs are nonnegative and zero for empty
// chunks.
func TestQuickCostNonNegative(t *testing.T) {
	for _, p := range timingProblems(t) {
		for _, k := range p.Unique {
			w := k.Work(0, 0)
			if w.Flops != 0 || w.Bytes != 0 {
				t.Fatalf("%s/%s: empty chunk has work %+v", p.AppName, k.Name, w)
			}
			full := k.Work(0, k.Size)
			if full.Flops < 0 || full.Bytes < 0 {
				t.Fatalf("%s/%s: negative work", p.AppName, k.Name)
			}
			if full.Flops == 0 && full.Bytes == 0 {
				t.Fatalf("%s/%s: zero total work", p.AppName, k.Name)
			}
		}
	}
}

// TestEveryAppHasCalibratedEfficiencies: every kernel declares CPU and
// GPU efficiency factors (the calibration table).
func TestEveryAppHasCalibratedEfficiencies(t *testing.T) {
	for _, p := range timingProblems(t) {
		for _, k := range p.Unique {
			if k.Eff == nil {
				t.Fatalf("%s/%s: no efficiency calibration", p.AppName, k.Name)
			}
			for _, kind := range []device.Kind{device.CPU, device.GPU} {
				if !k.Eff[kind].Valid() {
					t.Fatalf("%s/%s: invalid %v efficiency %+v", p.AppName, k.Name, kind, k.Eff[kind])
				}
			}
		}
	}
}
