package metrics

import (
	"testing"

	"heteropart/internal/sim"
)

// TestGoldenExposition pins the full exposition of a representative
// registry byte for byte: ordering, HELP/TYPE placement, histogram
// derived series and escaping. Any format drift fails loudly here
// before it breaks scrapers or the flight recorder.
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", "completed runs").Add(3)
	r.Gauge("makespan_ratio", "achieved / oracle makespan").Set(1.25)
	h := r.Histogram("chunk_ns", "chunk service time")
	h.Observe(10)
	h.Observe(100)
	h.Observe(1000)
	r.Counter(Label("elems_total", "dev", "0"), "elements per device").Add(7)
	r.Counter(Label("elems_total", "dev", "1")).Add(9)

	const want = `# TYPE heteropart_virtual_time_ns gauge
heteropart_virtual_time_ns 42
# HELP chunk_ns chunk service time
# TYPE chunk_ns histogram
chunk_ns_count 3
chunk_ns_sum 1110
chunk_ns_max 1000
chunk_ns_p50 127
chunk_ns_p95 1000
chunk_ns_p99 1000
# HELP elems_total elements per device
# TYPE elems_total counter
elems_total{dev="0"} 7
elems_total{dev="1"} 9
# HELP makespan_ratio achieved / oracle makespan
# TYPE makespan_ratio gauge
makespan_ratio 1.25
# HELP runs_total completed runs
# TYPE runs_total counter
runs_total 3
`
	got := r.Text(sim.Time(42))
	if got != want {
		t.Fatalf("exposition drifted.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
