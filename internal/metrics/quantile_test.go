package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"

	"heteropart/internal/sim"
)

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile must be 0")
	}

	// 100 observations 1..100: p50 lands in bucket [32,64) → upper 63;
	// p99 and p100 land in the bucket holding 100, clamped to Max.
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 63 {
		t.Fatalf("p50 = %d, want 63 (upper bound of [32,64))", got)
	}
	if got := h.Quantile(0.99); got != 100 {
		t.Fatalf("p99 = %d, want 100 (bucket ceiling clamped to max)", got)
	}
	if got := h.Quantile(1.0); got != 100 {
		t.Fatalf("p100 = %d, want max 100", got)
	}
	// Quantile estimates never exceed the true maximum and never
	// under-run the bucket of the true rank value.
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		est := h.Quantile(q)
		exact := int64(math.Ceil(q * 100))
		if est > 100 {
			t.Fatalf("q=%v estimate %d exceeds max", q, est)
		}
		if est < exact {
			t.Fatalf("q=%v estimate %d below exact value %d", q, est, exact)
		}
	}

	// Single observation: every quantile is that value.
	one := &Histogram{}
	one.Observe(42)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := one.Quantile(q); got != 42 {
			t.Fatalf("single-obs q=%v = %d, want 42", q, got)
		}
	}
}

func TestBucketCountsAndUpper(t *testing.T) {
	h := &Histogram{}
	h.Observe(1)  // bucket 0
	h.Observe(2)  // bucket 1
	h.Observe(3)  // bucket 1
	h.Observe(64) // bucket 6
	bc := h.BucketCounts()
	if bc[0] != 1 || bc[1] != 2 || bc[6] != 1 {
		t.Fatalf("bucket counts wrong: %v", bc[:8])
	}
	if BucketUpper(0) != 1 || BucketUpper(1) != 3 || BucketUpper(6) != 127 {
		t.Fatalf("bucket uppers wrong: %d %d %d", BucketUpper(0), BucketUpper(1), BucketUpper(6))
	}
	if BucketUpper(HistBuckets-1) != math.MaxInt64 {
		t.Fatal("last bucket must be unbounded")
	}
	var nilH *Histogram
	if nilH.BucketCounts() != [HistBuckets]int64{} {
		t.Fatal("nil BucketCounts must be zeroed")
	}
}

// TestSnapshotDeterministicOrder registers series in a scrambled order
// and checks both the snapshot and the text exposition iterate sorted,
// identically across repeated captures.
func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	names := []string{"zeta_total", "alpha_total", "mid_ns", "beta_ratio"}
	r.Counter(names[0]).Inc()
	r.Counter(names[1]).Inc()
	r.Histogram(names[2]).Observe(5)
	r.Gauge(names[3]).Set(0.5)

	s1 := r.Snapshot(sim.Time(7))
	if !sort.SliceIsSorted(s1.Points, func(i, j int) bool { return s1.Points[i].Name < s1.Points[j].Name }) {
		t.Fatalf("snapshot points not sorted: %+v", s1.Points)
	}
	t1, t2 := r.Text(sim.Time(7)), r.Text(sim.Time(7))
	if t1 != t2 {
		t.Fatal("repeated expositions differ")
	}
}

func TestExpositionQuantileLines(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "latency")
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	text := r.Text(0)
	for _, want := range []string{"lat_ns_p50 63\n", "lat_ns_p95 100\n", "lat_ns_p99 100\n"} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestExpositionEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("esc_total", "path", `a\b"c`), "help with \\ and\nnewline").Inc()
	text := r.Text(0)
	if !strings.Contains(text, `esc_total{path="a\\b\"c"} 1`) {
		t.Fatalf("label value not escaped:\n%s", text)
	}
	if !strings.Contains(text, `# HELP esc_total help with \\ and\nnewline`) {
		t.Fatalf("HELP not escaped:\n%s", text)
	}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || line == "newline" {
			t.Fatalf("unescaped newline broke line structure:\n%s", text)
		}
	}
}
