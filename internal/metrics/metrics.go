// Package metrics is the observability substrate of the runtime stack:
// a registry of named counters, gauges and histograms that the
// simulator, the task runtime, the schedulers and the partitioning
// pipeline report into.
//
// Design constraints, mirroring *trace.Trace:
//
//   - nil-safe: every method on a nil *Registry or nil instrument is a
//     no-op, so instrumentation sites never branch on "is observability
//     enabled";
//   - zero-allocation on the hot path: instrument handles are resolved
//     once (registration may allocate), after which Add/Set/Observe
//     touch only atomics;
//   - deterministic exposition: snapshots and the Prometheus-style text
//     format are sorted by series name, never by map iteration order;
//   - virtual-time-aware: a snapshot stamps the simulator's virtual
//     clock, because "when" in this system is virtual nanoseconds, not
//     the wall clock.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"heteropart/internal/sim"
)

// Type discriminates instrument kinds in snapshots and exposition.
type Type int

const (
	// CounterType is a monotonically increasing sum.
	CounterType Type = iota
	// GaugeType is a point-in-time value.
	GaugeType
	// HistogramType is a bucketed distribution of observations.
	HistogramType
)

// String names the type as the Prometheus exposition format does.
func (t Type) String() string {
	switch t {
	case CounterType:
		return "counter"
	case GaugeType:
		return "gauge"
	case HistogramType:
		return "histogram"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// MarshalJSON renders the type name, keeping serialized snapshots
// (flight-recorder bundles) self-describing.
func (t Type) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON parses a type name.
func (t *Type) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"counter"`:
		*t = CounterType
	case `"gauge"`:
		*t = GaugeType
	case `"histogram"`:
		*t = HistogramType
	default:
		return fmt.Errorf("metrics: unknown instrument type %s", data)
	}
	return nil
}

// Counter is a monotonically increasing integer sum. The zero value is
// ready; a nil *Counter discards updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Safe on nil; negative deltas are ignored
// (counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one. Safe on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current sum. Safe on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time float value. The zero value is ready; a nil
// *Gauge discards updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value. Safe on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer value. Safe on nil.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Value returns the current value. Safe on nil.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// HistBuckets is the number of histogram buckets: observations land in
// power-of-two buckets, bucket i holding values in [2^i, 2^(i+1)) with
// bucket 0 holding values <= 1 and the last bucket catching the rest.
// With 44 buckets the top finite boundary is 2^43 ns ≈ 2.4 virtual
// hours — beyond any simulated span this system produces.
const HistBuckets = 44

// Histogram is a fixed-bucket log2 distribution of int64 observations
// (virtual nanoseconds, bytes, percents — any non-negative integer
// measure). Observe is allocation-free. The zero value is ready; a nil
// *Histogram discards updates.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v)) - 1
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// Observe records one value. Negative observations clamp to zero.
// Safe on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveDuration records a virtual duration in nanoseconds.
func (h *Histogram) ObserveDuration(d sim.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations. Safe on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations. Safe on nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observation. Safe on nil.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the average observation, 0 when empty. Safe on nil.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// BucketCounts returns a copy of the per-bucket observation counts,
// bucket i holding values in [2^i, 2^(i+1)). Safe on nil (zeroes).
func (h *Histogram) BucketCounts() [HistBuckets]int64 {
	var out [HistBuckets]int64
	if h == nil {
		return out
	}
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= HistBuckets-1 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i+1) - 1
}

// Quantile returns an approximate q-quantile (0 < q <= 1) of the
// observed distribution. The estimate is the upper bound of the log2
// bucket holding the rank-⌈q·n⌉ observation, clamped to the true
// maximum — so it never exceeds any observed value's bucket ceiling,
// is exact for the tail (p100 == Max), and is deterministic for a
// given set of observations. Safe on nil (0); 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	max := h.Max()
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if ub := BucketUpper(i); ub < max {
				return ub
			}
			return max
		}
	}
	return max
}

// instrument is one registered series.
type instrument struct {
	name string
	typ  Type
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named instruments. The zero value is ready; a nil
// *Registry hands out nil instruments, so an entire instrumentation
// tree built from a nil registry is inert. Registration takes a lock
// and may allocate — resolve instruments once at setup, not per event.
type Registry struct {
	mu   sync.Mutex
	by   map[string]*instrument
	list []*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// lookup finds or creates an instrument, enforcing type consistency:
// re-registering a name with a different type returns a fresh detached
// instrument (the caller's updates go nowhere visible) rather than
// corrupting the series — a programming error surfaced by tests, not a
// runtime panic mid-simulation.
func (r *Registry) lookup(name string, typ Type, help string) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.by == nil {
		r.by = make(map[string]*instrument)
	}
	if in, ok := r.by[name]; ok {
		if in.typ != typ {
			return newInstrument(name, typ, help)
		}
		if in.help == "" && help != "" {
			in.help = help
		}
		return in
	}
	in := newInstrument(name, typ, help)
	r.by[name] = in
	r.list = append(r.list, in)
	return in
}

func newInstrument(name string, typ Type, help string) *instrument {
	in := &instrument{name: name, typ: typ, help: help}
	switch typ {
	case CounterType:
		in.c = &Counter{}
	case GaugeType:
		in.g = &Gauge{}
	case HistogramType:
		in.h = &Histogram{}
	}
	return in
}

// Counter returns the named counter, creating it if needed. A nil
// registry returns a nil (inert) counter.
func (r *Registry) Counter(name string, help ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, CounterType, first(help)).c
}

// Gauge returns the named gauge, creating it if needed. A nil registry
// returns a nil (inert) gauge.
func (r *Registry) Gauge(name string, help ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, GaugeType, first(help)).g
}

// Histogram returns the named histogram, creating it if needed. A nil
// registry returns a nil (inert) histogram.
func (r *Registry) Histogram(name string, help ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, HistogramType, first(help)).h
}

func first(s []string) string {
	if len(s) > 0 {
		return s[0]
	}
	return ""
}

// helpEscaper escapes HELP text per the Prometheus exposition format.
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// labelEscaper escapes label values per the Prometheus exposition
// format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// Label renders a labeled series name: Label("x_total", "dev", "1")
// is `x_total{dev="1"}`. Values are escaped for the exposition format.
// Use at registration time only — it allocates.
func Label(name, key, value string) string {
	return name + "{" + key + "=\"" + labelEscaper.Replace(value) + "\"}"
}

// Labels renders a series name with several key="value" pairs, given
// as alternating key, value arguments, in the given (stable) order.
func Labels(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString("=\"")
		b.WriteString(labelEscaper.Replace(kv[i+1]))
		b.WriteString("\"")
	}
	b.WriteByte('}')
	return b.String()
}

// Point is one series in a snapshot.
type Point struct {
	Name string
	Type Type
	Help string
	// Value carries the counter sum or gauge value.
	Value float64
	// Count, Sum, Max, Mean and the approximate quantiles are set for
	// histograms.
	Count int64
	Sum   int64
	Max   int64
	Mean  float64
	P50   int64
	P95   int64
	P99   int64
}

// Snapshot is a consistent view of every registered series at one
// virtual instant.
type Snapshot struct {
	// At is the virtual time the snapshot was taken.
	At sim.Time
	// Points are the series, sorted by name.
	Points []Point
}

// Snapshot captures every series, sorted by name. Safe on nil (empty
// snapshot).
func (r *Registry) Snapshot(now sim.Time) Snapshot {
	s := Snapshot{At: now}
	if r == nil {
		return s
	}
	r.mu.Lock()
	list := make([]*instrument, len(r.list))
	copy(list, r.list)
	r.mu.Unlock()
	for _, in := range list {
		p := Point{Name: in.name, Type: in.typ, Help: in.help}
		switch in.typ {
		case CounterType:
			p.Value = float64(in.c.Value())
		case GaugeType:
			p.Value = in.g.Value()
		case HistogramType:
			p.Count = in.h.Count()
			p.Sum = in.h.Sum()
			p.Max = in.h.Max()
			p.Mean = in.h.Mean()
			p.P50 = in.h.Quantile(0.50)
			p.P95 = in.h.Quantile(0.95)
			p.P99 = in.h.Quantile(0.99)
			p.Value = float64(p.Count)
		}
		s.Points = append(s.Points, p)
	}
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].Name < s.Points[j].Name })
	return s
}

// Get returns a point by exact series name, false when absent.
func (s Snapshot) Get(name string) (Point, bool) {
	for _, p := range s.Points {
		if p.Name == name {
			return p, true
		}
	}
	return Point{}, false
}

// baseName strips the {labels} suffix of a series name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WriteText renders the snapshot in the Prometheus text exposition
// format (plus `heteropart_virtual_time_ns` carrying the snapshot's
// virtual timestamp). Output is deterministic: series sort by name,
// numbers format identically across runs.
func (s Snapshot) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE heteropart_virtual_time_ns gauge\nheteropart_virtual_time_ns %d\n", int64(s.At))
	lastBase := "heteropart_virtual_time_ns"
	for _, p := range s.Points {
		base := baseName(p.Name)
		if base != lastBase {
			if p.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", base, helpEscaper.Replace(p.Help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, p.Type)
			lastBase = base
		}
		switch p.Type {
		case HistogramType:
			fmt.Fprintf(&b, "%s_count %d\n", p.Name, p.Count)
			fmt.Fprintf(&b, "%s_sum %d\n", p.Name, p.Sum)
			fmt.Fprintf(&b, "%s_max %d\n", p.Name, p.Max)
			fmt.Fprintf(&b, "%s_p50 %d\n", p.Name, p.P50)
			fmt.Fprintf(&b, "%s_p95 %d\n", p.Name, p.P95)
			fmt.Fprintf(&b, "%s_p99 %d\n", p.Name, p.P99)
		default:
			fmt.Fprintf(&b, "%s %s\n", p.Name, formatValue(p.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatValue renders integers without an exponent and floats with a
// stable short form, so expositions are byte-identical across runs.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 9, 64)
}

// WriteText snapshots the registry at the given virtual time and
// renders it. Safe on nil (renders only the timestamp line).
func (r *Registry) WriteText(w io.Writer, now sim.Time) error {
	return r.Snapshot(now).WriteText(w)
}

// Text is WriteText into a string.
func (r *Registry) Text(now sim.Time) string {
	var b strings.Builder
	_ = r.WriteText(&b, now)
	return b.String()
}
