package metrics

import (
	"strings"
	"testing"

	"heteropart/internal/sim"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_ns")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	// All updates through nil handles must be no-ops, not panics.
	c.Add(5)
	c.Inc()
	g.Set(1.5)
	g.SetInt(7)
	h.Observe(100)
	h.ObserveDuration(3 * sim.Microsecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("nil instruments leaked values")
	}
	snap := r.Snapshot(10)
	if len(snap.Points) != 0 || snap.At != 10 {
		t.Fatalf("nil registry snapshot = %+v", snap)
	}
	if !strings.Contains(r.Text(10), "heteropart_virtual_time_ns 10") {
		t.Fatal("nil registry text missing timestamp")
	}
}

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tasks_total")
	c.Add(3)
	c.Inc()
	c.Add(-5) // counters never go down
	if c.Value() != 4 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("tasks_total") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("ratio")
	g.Set(0.75)
	if g.Value() != 0.75 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.SetInt(12)
	if g.Value() != 12 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("span_ns")
	for _, v := range []int64{0, 1, 2, 100, 1000, -5} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1103 { // -5 clamps to 0
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d", h.Max())
	}
	if m := h.Mean(); m < 183 || m > 184 {
		t.Fatalf("mean = %v", m)
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1024: 10}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Fatalf("bucketOf(%d) = %d, want %d", v, got, want)
		}
	}
	if got := bucketOf(1 << 62); got != HistBuckets-1 {
		t.Fatalf("huge value bucket = %d", got)
	}
}

func TestTypeMismatchDetaches(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(2)
	// Same name, different type: the caller gets a detached instrument
	// and the original series is untouched.
	g := r.Gauge("x")
	g.Set(9)
	snap := r.Snapshot(0)
	p, ok := snap.Get("x")
	if !ok || p.Type != CounterType || p.Value != 2 {
		t.Fatalf("series corrupted: %+v", p)
	}
}

func TestLabelHelpers(t *testing.T) {
	if got := Label("t_total", "dev", "1"); got != `t_total{dev="1"}` {
		t.Fatalf("Label = %q", got)
	}
	if got := Labels("t_total", "dev", "1", "dir", "htod"); got != `t_total{dev="1",dir="htod"}` {
		t.Fatalf("Labels = %q", got)
	}
	if got := Labels("t_total"); got != "t_total" {
		t.Fatalf("Labels no kv = %q", got)
	}
}

func TestSnapshotSortedAndStamped(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total").Add(1)
	r.Counter("a_total").Add(2)
	r.Gauge("m").Set(3)
	snap := r.Snapshot(42 * sim.Microsecond)
	if snap.At != 42*sim.Microsecond {
		t.Fatalf("At = %v", snap.At)
	}
	var names []string
	for _, p := range snap.Points {
		names = append(names, p.Name)
	}
	want := []string{"a_total", "m", "z_total"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("order = %v", names)
		}
	}
	if _, ok := snap.Get("nosuch"); ok {
		t.Fatal("Get found a missing series")
	}
}

func TestTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("rt_tasks_total", "dev", "0"), "tasks executed").Add(7)
	r.Counter(Label("rt_tasks_total", "dev", "1")).Add(3)
	r.Gauge("rt_makespan_ns").SetInt(12345)
	h := r.Histogram("rt_drain_ns")
	h.Observe(10)
	h.Observe(30)
	text := r.Text(99)
	for _, want := range []string{
		"heteropart_virtual_time_ns 99",
		"# HELP rt_tasks_total tasks executed",
		"# TYPE rt_tasks_total counter",
		`rt_tasks_total{dev="0"} 7`,
		`rt_tasks_total{dev="1"} 3`,
		"# TYPE rt_makespan_ns gauge",
		"rt_makespan_ns 12345",
		"# TYPE rt_drain_ns histogram",
		"rt_drain_ns_count 2",
		"rt_drain_ns_sum 40",
		"rt_drain_ns_max 30",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// One TYPE line per base name, not per labeled series.
	if strings.Count(text, "# TYPE rt_tasks_total counter") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", text)
	}
}

func TestTextDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		for _, d := range []string{"0", "1", "2"} {
			r.Counter(Label("x_total", "dev", d)).Add(5)
		}
		r.Gauge("ratio").Set(0.3333333333)
		return r.Text(1000)
	}
	if build() != build() {
		t.Fatal("exposition differs between identical registries")
	}
}

func TestFormatValue(t *testing.T) {
	if got := formatValue(3); got != "3" {
		t.Fatalf("int = %q", got)
	}
	if got := formatValue(0.5); got != "0.5" {
		t.Fatalf("float = %q", got)
	}
	if got := formatValue(1e18); !strings.Contains(got, "e+") {
		t.Fatalf("huge = %q", got)
	}
}

// BenchmarkMetricsCounter proves the hot path allocates nothing —
// enabled and disabled alike.
func BenchmarkMetricsCounter(b *testing.B) {
	b.Run("enabled", func(b *testing.B) {
		r := NewRegistry()
		c := r.Counter("bench_total")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("disabled", func(b *testing.B) {
		var r *Registry
		c := r.Counter("bench_total")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
}

// BenchmarkMetricsHistogram proves Observe is allocation-free.
func BenchmarkMetricsHistogram(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_ns")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
