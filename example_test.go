package heteropart_test

import (
	"fmt"

	"heteropart"
)

// ExampleAnalyze shows the analyzer's decision pipeline on a bundled
// application.
func ExampleAnalyze() {
	app, _ := heteropart.AppByName("STREAM-Seq")
	problem, _ := app.Build(heteropart.Variant{N: 1 << 20, Sync: heteropart.SyncForced})
	report, _ := heteropart.Analyze(problem)
	fmt.Println(report)
	// Output:
	// STREAM-Seq: class MK-Seq (III), inter-kernel sync -> use SP-Varied
}

// ExampleClassify classifies a kernel structure built from the IR.
func ExampleClassify() {
	s := heteropart.Structure{Flow: heteropart.FlowLoop{
		Body: heteropart.FlowSeq{
			heteropart.FlowCall{Kernel: "copy"},
			heteropart.FlowCall{Kernel: "scale"},
		},
		Trips: 10,
	}}
	cls, _ := heteropart.Classify(s)
	fmt.Println(cls, cls.Roman())
	// Output:
	// MK-Loop IV
}

// ExampleParseStructure classifies an application from its compact
// textual description.
func ExampleParseStructure() {
	s, _ := heteropart.ParseStructure("dag{potrf; trsm<-potrf; syrk<-trsm; gemm<-trsm,syrk}")
	cls, _ := heteropart.Classify(s)
	fmt.Println(cls)
	fmt.Println(heteropart.Ranking(cls, false))
	// Output:
	// MK-DAG
	// [DP-Perf DP-Dep]
}

// ExampleRanking prints Table I for one class.
func ExampleRanking() {
	fmt.Println(heteropart.Ranking(heteropart.MKSeq, false))
	fmt.Println(heteropart.Ranking(heteropart.MKSeq, true))
	// Output:
	// [SP-Unified DP-Perf DP-Dep SP-Varied]
	// [SP-Varied DP-Perf DP-Dep SP-Unified]
}
