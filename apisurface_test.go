package heteropart_test

import (
	"os"
	"strings"
	"testing"

	"heteropart/internal/apisurface"
)

// TestAPISurface pins the package's exported API surface to the
// committed golden (api.txt). A surface change — adding, removing or
// re-signing an exported identifier — must come with `make api`, so
// the diff is explicit in review and never incidental.
func TestAPISurface(t *testing.T) {
	lines, err := apisurface.Surface(".")
	if err != nil {
		t.Fatalf("Surface: %v", err)
	}
	got := strings.Join(lines, "\n") + "\n"
	goldenBytes, err := os.ReadFile("api.txt")
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with `make api`)", err)
	}
	golden := string(goldenBytes)
	if got == golden {
		return
	}
	gotSet := toSet(lines)
	wantSet := toSet(strings.Split(strings.TrimRight(golden, "\n"), "\n"))
	for l := range wantSet {
		if !gotSet[l] {
			t.Errorf("missing from surface: %s", l)
		}
	}
	for l := range gotSet {
		if !wantSet[l] {
			t.Errorf("not in golden:       %s", l)
		}
	}
	t.Fatalf("API surface differs from api.txt; if the change is intended, run `make api` and commit the diff")
}

func toSet(lines []string) map[string]bool {
	set := make(map[string]bool, len(lines))
	for _, l := range lines {
		if l != "" {
			set[l] = true
		}
	}
	return set
}
