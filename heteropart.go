// Package heteropart matches data-parallel applications with workload
// partitioning strategies for efficient execution on heterogeneous
// (CPU + accelerator) platforms, reproducing Shen, Varbanescu,
// Martorell and Sips, "Matchmaking Applications and Partitioning
// Strategies for Efficient Execution on Heterogeneous Platforms"
// (ICPP 2015).
//
// The library bundles everything the paper builds on:
//
//   - a deterministic discrete-event simulator of heterogeneous
//     platforms (CPU + GPU datasheet models, PCIe links, distinct
//     memory spaces) calibrated to the paper's Xeon E5-2620 + Tesla
//     K20m testbed;
//   - an OmpSs-like task runtime: data-dependency analysis, automatic
//     host<->device transfers, taskwait semantics and pluggable
//     schedulers;
//   - the Glinda static partitioning model (profiling + prediction +
//     hardware-configuration decision);
//   - the application classifier (SK-One, SK-Loop, MK-Seq, MK-Loop,
//     MK-DAG) and the five partitioning strategies (SP-Single,
//     SP-Unified, SP-Varied, DP-Dep, DP-Perf);
//   - the analyzer that ranks the suitable strategies per class
//     (Table I) and selects the best;
//   - the paper's six evaluation applications plus a Class-V blocked
//     Cholesky, and the harness regenerating every evaluation figure
//     and table.
//
// Quick start:
//
//	plat := heteropart.PaperPlatform(12)
//	app, _ := heteropart.AppByName("BlackScholes")
//	problem, _ := app.Build(heteropart.Variant{})
//	report, outcome, _ := heteropart.Matchmake(problem, plat, heteropart.Options{})
//	fmt.Println(report, outcome.Result.Makespan)
package heteropart

import (
	"context"
	"fmt"

	"heteropart/internal/analyzer"
	"heteropart/internal/apierr"
	"heteropart/internal/apps"
	"heteropart/internal/calib"
	"heteropart/internal/classify"
	"heteropart/internal/device"
	"heteropart/internal/exp"
	"heteropart/internal/fault"
	"heteropart/internal/glinda"
	"heteropart/internal/mem"
	"heteropart/internal/metrics"
	"heteropart/internal/plan"
	"heteropart/internal/rt"
	"heteropart/internal/runner"
	"heteropart/internal/sim"
	"heteropart/internal/strategy"
	"heteropart/internal/task"
	"heteropart/internal/telemetry"
	"heteropart/internal/telemetry/flight"
	"heteropart/internal/telemetry/serve"
	"heteropart/internal/trace"
)

// Platform and device modeling.
type (
	// Platform is a host CPU plus attached accelerators.
	Platform = device.Platform
	// Device is a processing unit instantiated on a platform.
	Device = device.Device
	// DeviceModel is the datasheet description of a processing unit.
	DeviceModel = device.Model
	// DeviceKind discriminates CPUs, GPUs and generic accelerators.
	DeviceKind = device.Kind
	// Link models a host<->accelerator interconnect.
	Link = device.Link
	// Attachment pairs an accelerator model with its host link.
	Attachment = device.Attachment
	// Efficiency calibrates a kernel's achieved fraction of peak.
	Efficiency = device.Efficiency
	// Precision selects single or double precision peaks.
	Precision = device.Precision
	// P2PEdge is a direct accelerator<->accelerator link on a
	// platform's topology graph.
	P2PEdge = device.P2PEdge
	// PlatformSpec is the JSON-serializable platform description: the
	// catalog entry format, the payload of hetsim -platform-in, and
	// the body of GET /v1/platforms entries.
	PlatformSpec = device.Spec
	// CostModel prices kernel work on a device; the simulator's
	// virtual clock, Glinda predictions and DP-Perf estimates all go
	// through the platform's model.
	CostModel = device.CostModel
	// RooflineCost is the paper's roofline cost model, the platform
	// default.
	RooflineCost = device.Roofline
	// CalibratedCost wraps a base cost model with per-(kernel, device)
	// multiplicative overrides from calibration runs.
	CalibratedCost = device.Calibrated
	// CostScale is one calibrated override.
	CostScale = device.Scale
)

// Device kinds and precisions.
const (
	CPU = device.CPU
	GPU = device.GPU
	// Accel is a generic many-core accelerator.
	Accel = device.Accel

	// SP and DP select the peak-FLOPS figure a kernel uses.
	SP = device.SP
	DP = device.DP
)

// Tasking and memory.
type (
	// Kernel describes one parallel section: iteration space, cost
	// model, efficiencies, data accesses and an optional real
	// implementation.
	Kernel = task.Kernel
	// Access names a buffer region a kernel chunk touches.
	Access = task.Access
	// AccessMode is in/out/inout.
	AccessMode = task.Mode
	// Buffer is a registered array.
	Buffer = mem.Buffer
	// Interval is a half-open element range.
	Interval = mem.Interval
	// Trace records task placements and transfers of one execution.
	Trace = trace.Trace
	// ExecutionResult summarizes one runtime execution.
	ExecutionResult = rt.Result
	// Duration is virtual time in nanoseconds.
	Duration = sim.Duration
)

// Access modes.
const (
	Read      = task.Read
	Write     = task.Write
	ReadWrite = task.ReadWrite
)

// Classification.
type (
	// Class is one of the paper's five application classes.
	Class = classify.Class
	// Structure is an application's kernel structure (the IR the
	// classifier walks).
	Structure = classify.Structure
	// FlowCall, FlowSeq, FlowLoop and FlowDAG build Structure flows.
	FlowCall = classify.Call
	FlowSeq  = classify.Seq
	FlowLoop = classify.Loop
	FlowDAG  = classify.DAG
	// DAGCall is one node of a FlowDAG.
	DAGCall = classify.DAGCall
)

// The five classes.
const (
	SKOne  = classify.SKOne
	SKLoop = classify.SKLoop
	MKSeq  = classify.MKSeq
	MKLoop = classify.MKLoop
	MKDAG  = classify.MKDAG
)

// Applications and execution.
type (
	// App builds problem instances.
	App = apps.App
	// Problem is an instantiated workload.
	Problem = apps.Problem
	// Phase is one kernel invocation in program order.
	Phase = apps.Phase
	// Variant parameterizes a problem build.
	Variant = apps.Variant
	// SyncMode selects the inter-kernel synchronization variant.
	SyncMode = apps.SyncMode
	// Strategy is a partitioning strategy.
	Strategy = strategy.Strategy
	// Options tunes strategy execution.
	Options = strategy.Options
	// Outcome is a measured strategy execution.
	Outcome = strategy.Outcome
	// Report is the analyzer's matchmaking decision.
	Report = analyzer.Report
	// Validation is an empirical Table-I ranking check.
	Validation = analyzer.Validation
	// GlindaConfig tunes the static-partitioning pipeline.
	GlindaConfig = glinda.Config
	// GlindaDecision is a hardware-configuration + partitioning
	// decision.
	GlindaDecision = glinda.Decision
	// Experiment regenerates one paper table or figure.
	Experiment = exp.Experiment
	// ResultTable is an experiment's rendered output.
	ResultTable = exp.Table
	// ExpEnv is the environment experiments run in: a platform plus
	// the sweep runner sharding their simulations.
	ExpEnv = exp.Env
	// RunSpec names one independent simulation run for the sweep
	// runner; its canonical encoding is the result-cache key.
	RunSpec = runner.Spec
	// RunResult is one measured RunSpec.
	RunResult = runner.Result
	// RunnerConfig parameterizes a sweep runner.
	RunnerConfig = runner.Config
	// Runner shards independent simulation runs over a bounded worker
	// pool with a content-addressed result cache; results come back in
	// input order, so rendered sweeps are byte-identical to sequential
	// execution.
	Runner = runner.Runner
	// Metrics is a registry of runtime/scheduler instruments; pass one
	// through Options.Metrics to collect execution telemetry.
	Metrics = metrics.Registry
	// MetricsSnapshot is a point-in-time view of a registry.
	MetricsSnapshot = metrics.Snapshot
	// ExecutionPlan is the serializable decision record a strategy's
	// Plan produces: per-kernel partitions, chunk boundaries, pins,
	// scheduler policy and synchronization structure. Execute it with
	// ExecutePlan, round-trip it with its JSON method and PlanFromJSON.
	ExecutionPlan = plan.ExecutionPlan
	// PlanPhase is one kernel invocation's partitioning inside an
	// ExecutionPlan.
	PlanPhase = plan.PhasePlan
	// PlanChunk is one contiguous task instance inside a PlanPhase.
	PlanChunk = plan.Chunk
	// SchedulerSpec names the scheduling policy a plan executes under.
	SchedulerSpec = plan.SchedulerSpec
)

// Synchronization variants.
const (
	SyncDefault = apps.SyncDefault
	SyncForced  = apps.SyncForced
	SyncNone    = apps.SyncNone
)

// PaperPlatform builds the evaluation platform of the paper's Table
// III — an Intel Xeon E5-2620 host with an Nvidia Tesla K20m on PCIe
// 2.0 — with m CPU worker threads (m <= 0 selects all 12 hardware
// threads).
func PaperPlatform(m int) *Platform { return device.PaperPlatform(m) }

// NewPlatform builds a custom platform from a CPU model and
// accelerator attachments. It fails when the host model is not a CPU
// or an attachment is.
func NewPlatform(cpu DeviceModel, cpuThreads int, accels ...Attachment) (*Platform, error) {
	return device.NewPlatform(cpu, cpuThreads, accels...)
}

// PlatformFromJSON decodes, validates and instantiates a serialized
// PlatformSpec; threads > 0 overrides the spec's host thread count.
// Failures wrap ErrPlatformInvalid.
func PlatformFromJSON(data []byte, threads int) (*Platform, error) {
	return device.PlatformFromJSON(data, threads)
}

// PlatformSpecFromJSON decodes and validates a serialized
// PlatformSpec without instantiating it; failures wrap
// ErrPlatformInvalid.
func PlatformSpecFromJSON(data []byte) (*PlatformSpec, error) {
	return device.SpecFromJSON(data)
}

// PlatformNames lists the bundled platform catalog (the paper's
// testbed plus the extension topologies), sorted.
func PlatformNames() []string { return device.SpecNames() }

// PlatformByName instantiates a bundled catalog platform; threads > 0
// overrides the spec's host thread count. Unknown names wrap
// ErrPlatformInvalid.
func PlatformByName(name string, threads int) (*Platform, error) {
	return device.ByName(name, threads)
}

// PlatformSpecByName returns a bundled catalog platform spec; unknown
// names wrap ErrPlatformInvalid.
func PlatformSpecByName(name string) (*PlatformSpec, error) {
	return device.SpecByName(name)
}

// Device catalog (datasheet models ready to attach).
var (
	XeonE5_2620  = device.XeonE5_2620
	TeslaK20m    = device.TeslaK20m
	GTX680       = device.GTX680
	XeonPhi5110P = device.XeonPhi5110P
	PCIeGen2x16  = device.PCIeGen2x16
	PCIeGen3x16  = device.PCIeGen3x16
)

// Apps returns the bundled applications (the paper's Table II plus the
// Class-V Cholesky).
func Apps() []App { return apps.Registry() }

// AppByName finds a bundled application.
func AppByName(name string) (App, error) { return apps.ByName(name) }

// AppNames lists the bundled application names, in registry order —
// the values AppByName accepts.
func AppNames() []string {
	all := apps.Registry()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name()
	}
	return names
}

// Strategies returns every partitioning strategy plus the Only-CPU /
// Only-GPU references.
func Strategies() []Strategy { return strategy.All() }

// StrategyNames lists the registered strategy names, in registry
// order — the values StrategyByName accepts.
func StrategyNames() []string {
	all := strategy.All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name()
	}
	return names
}

// StrategyByName finds a strategy ("SP-Single", "DP-Perf", ...).
func StrategyByName(name string) (Strategy, error) { return strategy.ByName(name) }

// Classify determines the application class of a kernel structure.
func Classify(s Structure) (Class, error) { return classify.Classify(s) }

// ParseStructure reads a kernel structure from its compact textual
// form, e.g. "loop[10]{copy; scale; add; triad} !sync" — see the
// matchmaker CLI's -structure flag.
func ParseStructure(src string) (Structure, error) { return classify.Parse(src) }

// Ranking returns Table I's strategy ordering for a class.
func Ranking(cls Class, needsSync bool) []string { return analyzer.Ranking(cls, needsSync) }

// Analyze classifies a problem and selects the best-ranked strategy
// (the paper's application analyzer, Fig. 2).
func Analyze(p *Problem) (Report, error) { return analyzer.Analyze(p) }

// Typed sentinel errors of the API boundary. Every error returned by
// the facade (and the layers beneath it) wraps the matching sentinel
// at its origin, so errors.Is classifies failures without string
// matching; the hetserved HTTP service maps them to status codes
// (404 / 400 / 409 / 499).
var (
	// ErrUnknownApp: AppByName was asked for an unregistered
	// application.
	ErrUnknownApp = apierr.ErrUnknownApp
	// ErrUnknownStrategy: StrategyByName was asked for an unregistered
	// strategy.
	ErrUnknownStrategy = apierr.ErrUnknownStrategy
	// ErrPlanInvalid: an ExecutionPlan failed validation, decoding, or
	// binding to its problem.
	ErrPlanInvalid = apierr.ErrPlanInvalid
	// ErrPlatformInvalid: a PlatformSpec or Platform describes a
	// degenerate machine (zero devices, unreachable device,
	// zero-bandwidth link, unknown model or catalog name).
	ErrPlatformInvalid = apierr.ErrPlatformInvalid
	// ErrPlatformMismatch: a plan was executed on a platform other than
	// the one it was decided for.
	ErrPlatformMismatch = apierr.ErrPlatformMismatch
	// ErrCanceled: a *Context run was abandoned because its context was
	// canceled or its deadline expired. The context's own error is in
	// the chain too, so errors.Is also matches context.Canceled /
	// context.DeadlineExceeded.
	ErrCanceled = apierr.ErrCanceled
	// ErrNilOutcome: RecordRun was handed an outcome with no execution
	// result.
	ErrNilOutcome = apierr.ErrNilOutcome
	// ErrFaultInvalid: a FaultSchedule failed validation or decoding.
	ErrFaultInvalid = apierr.ErrFaultInvalid
	// ErrFaultInjected: a run was halted by an injected fault (crash,
	// transfer failure or device loss).
	ErrFaultInjected = apierr.ErrFaultInjected
	// ErrDeviceLost: an injected device-loss fault removed a device
	// mid-run. Errors matching it also match ErrFaultInjected.
	ErrDeviceLost = apierr.ErrDeviceLost
	// ErrCalibrationStale: a CalibrationReport was applied to (or
	// fitted against) a platform other than the one it was recorded
	// on. Correction factors do not transfer across machines.
	ErrCalibrationStale = apierr.ErrCalibrationStale
	// ErrOptionsInvalid: an Options combination was rejected by
	// Options.Validate before any work ran.
	ErrOptionsInvalid = apierr.ErrOptionsInvalid
)

// Matchmake analyzes a problem, then runs the selected strategy on the
// platform.
func Matchmake(p *Problem, plat *Platform, opts Options) (Report, *Outcome, error) {
	return analyzer.Matchmake(p, plat, opts)
}

// MatchmakeContext is Matchmake under a cancellation context: the
// selected strategy's execution honours ctx cooperatively at phase
// boundaries and returns an error wrapping ErrCanceled when abandoned.
// With a background context the result is byte-identical to Matchmake.
func MatchmakeContext(ctx context.Context, p *Problem, plat *Platform, opts Options) (Report, *Outcome, error) {
	return analyzer.MatchmakeContext(ctx, p, plat, opts)
}

// ValidateRanking runs every suitable strategy for an application and
// checks the empirical ordering against Table I.
func ValidateRanking(app App, v Variant, plat *Platform, opts Options) (*Validation, error) {
	return analyzer.ValidateRanking(app, v, plat, opts)
}

// ExecutePlan carries out a decided plan on the platform: validation,
// platform-fingerprint check, materialization and the measured run.
// Replaying a plan (including one loaded with PlanFromJSON) reproduces
// the run that decided it exactly.
func ExecutePlan(pl *ExecutionPlan, p *Problem, plat *Platform, opts Options) (*Outcome, error) {
	return strategy.Execute(pl, p, plat, opts)
}

// ExecutePlanContext is ExecutePlan under a cancellation context,
// checked cooperatively at the runtime's phase boundaries; an
// abandoned run returns an error wrapping ErrCanceled. With a
// background context the result is byte-identical to ExecutePlan.
func ExecutePlanContext(ctx context.Context, pl *ExecutionPlan, p *Problem, plat *Platform, opts Options) (*Outcome, error) {
	return strategy.ExecuteContext(ctx, pl, p, plat, opts)
}

// PlanFromJSON decodes and validates a serialized ExecutionPlan.
func PlanFromJSON(data []byte) (*ExecutionPlan, error) { return plan.FromJSON(data) }

// DiffPlans renders a human-readable comparison of two plans for the
// same problem (what the matchmaker's winner decided differently from
// the runner-up); identical plans diff to nothing.
func DiffPlans(a, b *ExecutionPlan) []string { return plan.Diff(a, b) }

// NewMetrics returns an empty metrics registry. Wire it into a run via
// Options.Metrics, then render it with (*Metrics).Text or walk a
// Snapshot; a nil *Metrics everywhere means observability off at zero
// cost.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// Experiments returns the harness regenerating every evaluation table
// and figure of the paper.
func Experiments() []Experiment { return exp.All() }

// ExperimentByID finds one experiment ("fig5a", "table1", ...).
func ExperimentByID(id string) (Experiment, error) { return exp.ByID(id) }

// ExperimentNames lists the experiment IDs, in registry order — the
// values ExperimentByID accepts.
func ExperimentNames() []string {
	all := exp.All()
	names := make([]string, len(all))
	for i, e := range all {
		names[i] = e.ID
	}
	return names
}

// MarkdownReport runs every experiment and renders the complete
// EXPERIMENTS.md document (paper-vs-measured, with shape checks).
func MarkdownReport(plat *Platform) (string, error) { return exp.MarkdownReport(plat) }

// NewRunner builds a sweep runner.
func NewRunner(cfg RunnerConfig) *Runner { return runner.New(cfg) }

// Observability: hierarchical span tracing, flight-recorder bundles
// and the live telemetry endpoint (DESIGN.md §8).
type (
	// SpanTracer records hierarchical execution spans (sweep → run →
	// plan/execute → phase → chunk/transfer). Wire one through
	// Options.Spans or RunnerConfig.Spans; a nil tracer everywhere
	// means span tracing off at zero cost.
	SpanTracer = telemetry.Tracer
	// SpanID names one recorded span (0 = none).
	SpanID = telemetry.SpanID
	// Span is one recorded interval.
	Span = telemetry.Span
	// FlightBundle is a versioned flight-recorder bundle: spec, resolved
	// plan, platform fingerprint, metrics snapshot, span tree and
	// utilization table of one run.
	FlightBundle = flight.Bundle
	// TelemetryServer serves /metrics, /healthz, /spans, /runs and
	// /debug/pprof on a private mux.
	TelemetryServer = serve.Server
	// TelemetryConfig parameterizes a TelemetryServer.
	TelemetryConfig = serve.Config
)

// NewSpanTracer returns an empty span tracer.
func NewSpanTracer() *SpanTracer { return telemetry.New() }

// NewTelemetryServer builds the live telemetry HTTP surface.
func NewTelemetryServer(cfg TelemetryConfig) *TelemetryServer { return serve.New(cfg) }

// PlatformFingerprint renders a platform's identity — the same string
// that gates ExecutionPlan replay and keys cached results.
func PlatformFingerprint(p *Platform) string { return plan.Fingerprint(p) }

// RecordRun assembles a flight-recorder bundle from one executed run.
// reg, tr and the outcome's trace may each be nil; the bundle records
// whatever the run collected. An outcome that is nil or carries no
// execution result cannot be recorded and returns an error wrapping
// ErrNilOutcome.
func RecordRun(appName string, out *Outcome, pl *ExecutionPlan, plat *Platform,
	reg *Metrics, tr *SpanTracer) (*FlightBundle, error) {
	if out == nil {
		return nil, fmt.Errorf("heteropart: RecordRun(%s): nil outcome: %w", appName, ErrNilOutcome)
	}
	if out.Result == nil {
		return nil, fmt.Errorf("heteropart: RecordRun(%s/%s): %w", appName, out.Strategy, ErrNilOutcome)
	}
	makespan := out.Result.Makespan
	var snap *MetricsSnapshot
	if reg != nil {
		s := reg.Snapshot(makespan)
		snap = &s
	}
	b, err := flight.Record(appName, out.Strategy, appName+"/"+out.Strategy,
		plan.Fingerprint(plat), int64(makespan), pl, snap, tr,
		out.Trace.Utilization(makespan))
	if err != nil {
		return nil, err
	}
	if err := b.AttachFaults(out.Faults, out.Degradations); err != nil {
		return nil, fmt.Errorf("heteropart: RecordRun(%s/%s): %w", appName, out.Strategy, err)
	}
	return b, nil
}

// ParseBundleFile reads a recorded flight bundle.
func ParseBundleFile(path string) (*FlightBundle, error) { return flight.ParseFile(path) }

// DiffBundles compares two recordings section by section; identical
// runs (including any bundle against itself) diff to nothing.
func DiffBundles(a, b *FlightBundle) []string { return flight.Diff(a, b) }

// Fault injection: deterministic, serializable failure schedules
// (DESIGN.md §12).
type (
	// FaultSchedule is a versioned, serializable description of the
	// faults to inject into one run. The same (spec, schedule) pair
	// always reproduces the same outcome — injection draws all its
	// randomness from the schedule's seed, never from a global source.
	FaultSchedule = fault.Schedule
	// FaultEvent is one fault in a schedule.
	FaultEvent = fault.Fault
	// Degradation records one survived device loss: which device died,
	// when, and what the recovery replan produced.
	Degradation = fault.Degradation
)

// FaultScheduleFromJSON decodes and validates a serialized
// FaultSchedule; failures wrap ErrFaultInvalid.
func FaultScheduleFromJSON(data []byte) (*FaultSchedule, error) { return fault.FromJSON(data) }

// Profile-guided calibration: fit cost-model corrections from recorded
// executions and replan until converged (DESIGN.md §14).
type (
	// CalibrationReport is the versioned, byte-stable calibration
	// artifact: fitted CostScale factors plus per-round evidence. Apply
	// it to a platform with its Apply method; a platform whose base
	// fingerprint differs is refused with ErrCalibrationStale.
	CalibrationReport = calib.Report
	// CalibrationRound is one round's evidence inside a report.
	CalibrationRound = calib.Round
	// CalibrationEntry is one fitted (kernel, device) group.
	CalibrationEntry = calib.Entry
	// CalibrationFitConfig tunes the robust fit (min samples per group,
	// outlier ratio guard).
	CalibrationFitConfig = calib.FitConfig
	// CalibrationObservation is one measured chunk execution extracted
	// from a span tree.
	CalibrationObservation = calib.Observation
	// ConvergeConfig drives the iterate-replan-measure loop.
	ConvergeConfig = calib.Config
)

// Calibrate fits a CalibrationReport from recorded flight bundles:
// plan-predicted chunk times are compared against the recorded span
// tree and per-(kernel, device) correction factors are fitted (median
// of ratios). Bundles recorded on a different platform are refused
// with an error wrapping ErrCalibrationStale.
func Calibrate(bundles []*FlightBundle, plat *Platform, cfg CalibrationFitConfig) (*CalibrationReport, error) {
	return calib.Calibrate(bundles, plat, cfg)
}

// Converge runs the profile-guided calibration loop: decide a plan on
// the believed cost model, execute it on the truth platform, fit
// corrections from the observed chunk times, fold them in, and repeat
// until the measured makespan settles (or cfg.MaxRounds). It returns
// the report, the plan decided on the converged model, and the
// calibrated platform. Deterministic: equal inputs produce
// byte-identical reports and plans.
func Converge(cfg ConvergeConfig, truth, believed *Platform) (*CalibrationReport, *ExecutionPlan, *Platform, error) {
	return calib.Converge(cfg, truth, believed)
}

// CalibrationFromJSON decodes and validates a serialized
// CalibrationReport.
func CalibrationFromJSON(data []byte) (*CalibrationReport, error) { return calib.FromJSON(data) }

// NewExpEnv builds an experiment environment whose internal sweeps
// shard over a pool of the given width (workers <= 1 is sequential).
// reg may be nil; when set it receives the runner_* telemetry.
func NewExpEnv(plat *Platform, workers int, reg *Metrics) *ExpEnv {
	return exp.NewEnv(plat, workers, reg)
}

// RunExperiments fans the experiments over the environment's worker
// pool and returns their tables in input order.
func RunExperiments(env *ExpEnv, exps []Experiment) ([]*ResultTable, error) {
	return exp.RunExperiments(env, exps)
}

// MarkdownReportEnv renders the EXPERIMENTS.md document through the
// environment's sweep runner; the output is byte-identical to the
// sequential MarkdownReport.
func MarkdownReportEnv(env *ExpEnv) (string, error) { return exp.MarkdownReportEnv(env) }
